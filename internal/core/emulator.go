package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// ExecTiming selects how task durations are obtained.
type ExecTiming int

const (
	// Modeled uses the calibrated platform timing model (the default;
	// fully deterministic).
	Modeled ExecTiming = iota
	// Measured times the actual Go kernel execution on the host and
	// scales it by the PE speed factor — closer in spirit to the
	// paper's real-hardware emulation, but host-dependent.
	Measured
)

// Overhead charging weights: abstract operation counts for the
// workload-manager work that the paper's Figure 10b measures around
// the policy invocation itself (completion monitoring, ready-queue
// update, communicating tasks to resource managers). Multiplied by the
// overlay core's SchedOpNS.
const (
	// monitorOpsPerPE covers acquiring the resource-handler lock,
	// reading the status field, and updating the ready list.
	monitorOpsPerPE = 6
	// dispatchOpsPerTask covers transferring one scheduled task to its
	// resource manager through the handler.
	dispatchOpsPerTask = 10
	// invocationBaseOps is the fixed entry/exit cost per scheduler
	// invocation.
	invocationBaseOps = 8
	// measuredAccelComputeFactor scales a host-measured CPU kernel
	// time to the accelerator's compute time in Measured mode (the
	// pipelined IP computes faster than the A53 but sits behind DMA).
	measuredAccelComputeFactor = 0.12
)

// Options configures an Emulator.
type Options struct {
	// Config is the emulated DSSoC hardware configuration.
	Config *platform.Config
	// Policy is the task scheduling heuristic.
	Policy sched.Policy
	// Registry resolves runfunc symbols; kernels.Default() plus the
	// application library is typical.
	Registry *kernels.Registry
	// Seed drives the jitter model (and nothing else).
	Seed int64
	// JitterSigma is the log-normal run-to-run noise level; 0 for
	// fully deterministic timing.
	JitterSigma float64
	// Timing selects modeled or host-measured task durations.
	Timing ExecTiming
	// SkipExecution disables functional kernel execution, leaving a
	// pure timing simulation. Used by large scheduler sweeps where
	// the numeric results are not inspected. Timing-only instances
	// also skip variable-memory allocation entirely (Mem is nil).
	SkipExecution bool
	// Scratch supplies reusable working buffers, letting sweep
	// workers amortise the emulator's per-run allocations across many
	// cells. nil allocates a private scratch; a non-nil scratch must
	// not be used by two emulators concurrently.
	Scratch *Scratch
	// Programs supplies the compiled-template cache. nil uses the
	// process-wide shared cache; set a private cache only for
	// isolation (tests, generated-spec churn).
	Programs *ProgramCache
	// Sink receives per-task and per-app records as they complete. nil
	// keeps the classic behaviour: every record lands in Report.Tasks /
	// Report.Apps. A non-nil sink replaces that collection — the report
	// slices stay empty and memory no longer grows with the task count,
	// which is what long-horizon and saturation runs need (pair with
	// stats.Online). The sink must not be shared by concurrent runs.
	Sink stats.Sink
	// Events is the dynamic-platform event schedule: PE faults and
	// restores, DVFS speed steps, power caps, applied at their virtual
	// instants at the top of the discrete-event loop (platevent package
	// doc). nil or empty leaves the platform static — byte-identical to
	// an emulator built without the field. Every Run replays the same
	// schedule from the top. The schedule is read-only here and may be
	// shared across emulators.
	Events *platevent.Schedule
}

// ArrivalSource is a workload stream: Next returns arrivals one at a
// time in nondecreasing time order, ok=false when the stream is
// exhausted. RunStream pulls from the source lazily, so an open-loop
// generator (workload.Poisson and friends) can drive arbitrarily long
// horizons without the trace — or the task slab — ever being
// materialised in memory.
type ArrivalSource interface {
	Next() (Arrival, bool)
}

// Arrival pairs an application archetype with its injection timestamp
// relative to the emulation reference start time.
type Arrival struct {
	Spec *appmodel.AppSpec
	At   vtime.Time
}

// Emulator runs one emulation: it owns the virtual clock, the resource
// handlers, and the statistics collector.
type Emulator struct {
	opts     Options
	clock    vtime.Clock
	jitter   *vtime.Jitter
	handlers []*ResourceHandler
	// handlerSlab backs handlers with one allocation.
	handlerSlab []ResourceHandler
	// peViews is the fixed scheduler view of the handlers, built once:
	// the handler table never changes, so the per-invocation rebuild
	// the pre-indexed emulator did was pure waste.
	peViews []sched.PE
	// view is the incrementally maintained indexed scheduler state
	// (per-class idle bitmaps, per-PE load/availability, the ready list
	// with compiled metadata). nil only for configurations outside the
	// index's representation (> 64 interned cost classes), which fall
	// back to per-invocation slice rebuilds.
	view *sched.View
	// schedPath names the scheduling path this emulator resolved to at
	// construction (SchedulerPath* constants): which ready-list and
	// policy machinery every Run uses. Exposed through SchedulerPath()
	// and stamped into each report, so a configuration that silently
	// misses the fast path is visible instead of just slow.
	schedPath string
	// streamed marks that the last Run went through RunStream, whose
	// instance recycling makes Instances() meaningless (it would always
	// be empty): reading it then is a loud error, not a silent nil.
	streamed bool
	// programs memoises this emulator's (config, registry) view of the
	// template cache per spec, so the per-arrival lookup in Run is one
	// map probe without cache locking.
	programs map[*appmodel.AppSpec]*Program

	// ready backs the no-view fallback only (configurations with > 64
	// interned cost classes): a plain slice with filter compaction. When a
	// view exists, the view's deque is the one and only ready list.
	ready     []*Task
	instances []*AppInstance
	// nextIdx is the next not-yet-injected entry of instances (slice
	// runs only).
	nextIdx int

	// Streaming-run state (RunStream): the arrival source, a one-entry
	// lookahead, the arrival sequence counter, and per-program free
	// lists of recycled instances. Completed instances return to the
	// free list, so peak memory follows the in-flight instance count
	// rather than the workload length.
	src         ArrivalSource
	pending     Arrival
	havePending bool
	arrivalSeq  int
	freeInst    map[*Program][]*AppInstance

	// platEvents is Options.Events sorted into application order;
	// evCursor walks it once per run (reset by beginRun).
	platEvents []platevent.Event
	evCursor   int
	// dynMeta re-lowers per-node ready metadata against the view's
	// extended class table when DVFS pre-interning added cost classes
	// beyond the configuration's own — the compiled meta's Costs tables
	// are too short then. Nil on static runs and whenever the event
	// speeds collapse into existing classes, so the zero-event path
	// still pushes the compiled records untouched. Derivations are
	// memoised per node (the class table never changes after New) and
	// survive across runs.
	dynMeta map[*progNode]*sched.ReadyMeta

	report            *stats.Report
	pendingMonitorOps int
}

// SchedulerPath values: which scheduling machinery an emulator's runs
// use. The distinction used to be invisible — a configuration past the
// index's representation silently fell back to per-invocation slice
// rebuilds — so the resolved path is now exposed on the emulator and
// stamped into every report.
const (
	// SchedulerPathIndexed: indexed view + the policy's ScheduleIndexed
	// fast path — the intended steady state for every built-in policy.
	SchedulerPathIndexed = "indexed"
	// SchedulerPathSlice: the view maintains the ready list
	// incrementally, but the policy (third-party, or wrapped in
	// sched.SliceOnly) consumes slice views.
	SchedulerPathSlice = "slice"
	// SchedulerPathSliceRebuild: no indexed view at all (> 64 interned
	// cost classes, or a PE without a valid TypeID); ready views are
	// rebuilt per invocation.
	SchedulerPathSliceRebuild = "slice-rebuild"
)

// New validates the options and builds an emulator. Degenerate
// configurations — no PEs, a PE without a type, a missing overlay
// processor — fail here with a descriptive error instead of surfacing
// as a crashed or stuck emulation at runtime.
func New(opts Options) (*Emulator, error) {
	if opts.Config == nil || len(opts.Config.PEs) == 0 {
		return nil, fmt.Errorf("core: configuration with at least one PE required")
	}
	for i, pe := range opts.Config.PEs {
		if pe == nil || pe.Type == nil {
			return nil, fmt.Errorf("core: configuration %s: PE %d has no type", opts.Config.Name, i)
		}
	}
	if opts.Config.Overlay == nil {
		return nil, fmt.Errorf("core: configuration %s has no overlay (management) processor", opts.Config.Name)
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("core: scheduling policy required")
	}
	if opts.Registry == nil {
		return nil, fmt.Errorf("core: kernel registry required")
	}
	if opts.Scratch == nil {
		opts.Scratch = NewScratch()
	}
	if opts.Programs == nil {
		opts.Programs = sharedPrograms
	}
	e := &Emulator{
		opts:     opts,
		jitter:   vtime.NewJitter(opts.Seed, opts.JitterSigma),
		programs: make(map[*appmodel.AppSpec]*Program),
	}
	if err := opts.Events.Validate(len(opts.Config.PEs)); err != nil {
		return nil, fmt.Errorf("core: configuration %s: %w", opts.Config.Name, err)
	}
	e.handlerSlab = make([]ResourceHandler, len(opts.Config.PEs))
	for i, pe := range opts.Config.PEs {
		h := &e.handlerSlab[i]
		*h = ResourceHandler{
			PE:      pe,
			status:  StatusIdle,
			idx:     int32(i),
			typeIdx: int32(opts.Config.TypeIndex(pe.Type.Key)),
			speed:   pe.Type.SpeedFactor,
		}
		e.handlers = append(e.handlers, h)
		e.peViews = append(e.peViews, h)
	}
	e.view = sched.NewView(e.peViews)
	e.platEvents = opts.Events.Events()
	if e.view != nil {
		// Pre-intern every DVFS target signature: the event schedule is
		// known now, so the view's class table is complete (and stable
		// across runs) before the first task is compiled against it. A
		// schedule that pushes past the 64-class ceiling drops the whole
		// emulator to the slice-rebuild path — observable below via
		// SchedulerPath, never a mid-run surprise.
		for _, ev := range e.platEvents {
			if ev.Kind != platevent.SetSpeed {
				continue
			}
			h := e.handlers[ev.PE]
			if e.view.InternClass(int32(h.TypeID()), ev.Speed, h.PowerW()) < 0 {
				e.view = nil
				break
			}
		}
	}
	if e.view != nil && e.view.NumClasses() > opts.Config.NumClasses() {
		e.dynMeta = make(map[*progNode]*sched.ReadyMeta)
	}
	switch {
	case e.view == nil:
		e.schedPath = SchedulerPathSliceRebuild
	default:
		if _, ok := opts.Policy.(sched.IndexedPolicy); ok {
			e.schedPath = SchedulerPathIndexed
		} else {
			e.schedPath = SchedulerPathSlice
		}
	}
	return e, nil
}

// SchedulerPath reports which scheduling path this emulator resolved
// to at construction (one of the SchedulerPath* constants). It is also
// stamped into every report as Report.SchedulerPath.
func (e *Emulator) SchedulerPath() string { return e.schedPath }

// program resolves the compiled template of one archetype for this
// emulator's configuration and registry: the application handler's
// parse-time work (symbol resolution, platform validation), executed
// at most once per (spec, config, registry) process-wide.
func (e *Emulator) program(spec *appmodel.AppSpec) (*Program, error) {
	if p, ok := e.programs[spec]; ok {
		return p, nil
	}
	p, err := e.opts.Programs.Get(spec, e.opts.Config, e.opts.Registry)
	if err != nil {
		return nil, err
	}
	e.programs[spec] = p
	return p, nil
}

// beginRun resets the emulator to its start-of-run state: fresh
// clock, empty ready list, reseeded jitter, reset policy and handlers,
// and a fresh report. When no sink is configured the report's task
// slice is presized from the scratch's capacity hint.
func (e *Emulator) beginRun() *Scratch {
	s := e.opts.Scratch
	e.clock.Reset()
	e.ready = s.ready[:0]
	e.instances = nil
	e.nextIdx = 0
	e.src = nil
	e.havePending = false
	e.arrivalSeq = 0
	e.pendingMonitorOps = 0
	e.evCursor = 0
	// Re-seed so repeated Runs of one emulator are identical; stateful
	// policies (RANDOM's generator) reset the same way.
	e.jitter.Reseed(e.opts.Seed, e.opts.JitterSigma)
	if r, ok := e.opts.Policy.(sched.Resettable); ok {
		r.Reset()
	}
	for _, h := range e.handlers {
		h.resetForRun()
	}
	if e.view != nil {
		e.view.Reset()
	}
	e.streamed = false
	s.clearMasks()
	s.events = s.events[:0]
	e.report = &stats.Report{
		ConfigName:    e.opts.Config.Name,
		PolicyName:    e.opts.Policy.Name(),
		SchedulerPath: e.schedPath,
	}
	if e.opts.Sink == nil {
		e.report.Tasks = s.taskRecords()
	}
	return s
}

// endRun hands the ready backing array and the realised task count
// back to the scratch on every exit — error paths included — and
// clears everything that must not outlive this run (see
// Scratch.release). Stream free lists survive between runs: they are
// bounded by the peak in-flight instance count and reference only
// templates the emulator's program cache pins anyway, so retaining
// them keeps back-to-back streamed runs allocation-free.
func (e *Emulator) endRun(s *Scratch) {
	s.ready = e.ready[:0]
	if e.opts.Sink == nil {
		s.noteTaskCount(len(e.report.Tasks))
	}
	e.src = nil
	s.release()
}

// finishReport stamps the end-of-run aggregates onto the report.
func (e *Emulator) finishReport() *stats.Report {
	e.report.Makespan = vtime.Duration(e.clock.Now())
	for _, h := range e.handlers {
		e.report.PEs = append(e.report.PEs, stats.PEStats{
			PEID:    h.PE.ID,
			Label:   h.PE.Label(),
			BusyNS:  h.busyNS,
			Tasks:   h.tasks,
			EnergyJ: float64(h.busyNS) * h.PE.Type.PowerW * 1e-9,
		})
	}
	return e.report
}

// Run executes the emulation for the given workload and returns the
// collected statistics. Each Run starts a fresh clock and fresh state;
// the same emulator may Run repeatedly and reuses its buffers.
func (e *Emulator) Run(arrivals []Arrival) (*stats.Report, error) {
	s := e.beginRun()
	defer e.endRun(s)

	// Initialisation phase, split compile/instantiate: resolve every
	// workload entry's compiled template (cached parse-time work),
	// then stamp instances into one contiguous task slab. The sorted
	// copy lives in scratch; it is consumed during instantiation and
	// never escapes.
	sorted := s.sortedArrivals(arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	progs := s.programSlots(len(sorted))
	totalTasks := 0
	for i, a := range sorted {
		if a.Spec == nil {
			return nil, fmt.Errorf("core: workload entry %d has no application", i)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("core: workload entry %d has negative arrival %v", i, a.At)
		}
		p, err := e.program(a.Spec)
		if err != nil {
			return nil, err
		}
		progs[i] = p
		totalTasks += len(p.nodes)
	}
	taskSlab := s.taskSlots(totalTasks)
	instSlab, instPtrs := s.instanceSlots(len(sorted))
	off := 0
	for i, a := range sorted {
		prog := progs[i]
		n := len(prog.nodes)
		slab := taskSlab[off : off+n : off+n]
		off += n
		inst := &instSlab[i]
		if err := e.stampInstance(inst, a.Spec, a.At, i, prog, slab); err != nil {
			return nil, err
		}
		instPtrs[i] = inst
	}
	e.instances = instPtrs

	if err := e.loop(); err != nil {
		return nil, err
	}
	return e.finishReport(), nil
}

// RunStream executes the emulation against an arrival stream instead
// of a materialised trace. Arrivals are instantiated lazily at their
// injection instant and completed instances are recycled through
// per-program free lists, so peak memory is proportional to the
// in-flight instance count — independent of the stream length. This is
// the entry point for open-loop (Poisson, bursty) and long-horizon
// workloads; pair it with a streaming Sink (stats.Online) or the
// report's record slices will still grow with the task count.
//
// The source must yield arrivals in nondecreasing time order (the
// workload package's generators do). A given trace produces the exact
// same report through Run and RunStream. Instances() PANICS after a
// streamed run: completed instances are recycled, so functional
// (memory-inspecting) validation must use Run (or collect records
// through a stats.Sink).
func (e *Emulator) RunStream(src ArrivalSource) (*stats.Report, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil arrival source")
	}
	s := e.beginRun()
	defer e.endRun(s)
	e.streamed = true
	e.src = src
	if err := e.advancePending(); err != nil {
		return nil, err
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	return e.finishReport(), nil
}

// advancePending pulls the next arrival of the stream into the
// lookahead slot, validating the source's time-ordering contract.
func (e *Emulator) advancePending() error {
	a, ok := e.src.Next()
	if !ok {
		e.havePending = false
		return nil
	}
	if a.Spec == nil {
		return fmt.Errorf("core: stream arrival %d has no application", e.arrivalSeq)
	}
	if a.At < 0 {
		return fmt.Errorf("core: stream arrival %d has negative arrival %v", e.arrivalSeq, a.At)
	}
	if e.havePending && a.At < e.pending.At {
		return fmt.Errorf("core: stream arrival %d at %v precedes predecessor at %v; sources must be time-ordered",
			e.arrivalSeq, a.At, e.pending.At)
	}
	e.pending = a
	e.havePending = true
	return nil
}

// stampInstance initialises one application instance in place: the
// header, the optional variable memory (skipped on timing-only runs —
// memory initialisation is per-instance work and cannot be compiled
// away), and every task of the slab. Both instantiation paths (batch
// Run and RunStream) go through it, so the byte-for-byte equivalence
// contract between them cannot drift.
func (e *Emulator) stampInstance(inst *AppInstance, spec *appmodel.AppSpec, at vtime.Time, idx int, prog *Program, tasks []Task) error {
	*inst = AppInstance{
		Spec:      spec,
		Index:     idx,
		Arrival:   at,
		Tasks:     tasks,
		prog:      prog,
		remaining: len(prog.nodes),
	}
	if !e.opts.SkipExecution {
		mem, err := appmodel.NewMemory(spec)
		if err != nil {
			return err
		}
		inst.Mem = mem
	}
	for id := range prog.nodes {
		nd := &prog.nodes[id]
		tasks[id] = Task{
			App:            inst,
			node:           nd,
			choice:         -1,
			remainingPreds: nd.preds,
		}
	}
	return nil
}

// instantiateStream stamps one streamed arrival into an instance,
// reusing a recycled slab of the same compiled template when one is
// free.
func (e *Emulator) instantiateStream(a Arrival) (*AppInstance, error) {
	prog, err := e.program(a.Spec)
	if err != nil {
		return nil, err
	}
	var inst *AppInstance
	if free := e.freeInst[prog]; len(free) > 0 {
		inst = free[len(free)-1]
		free[len(free)-1] = nil
		e.freeInst[prog] = free[:len(free)-1]
	} else {
		inst = &AppInstance{Tasks: make([]Task, len(prog.nodes))}
	}
	if err := e.stampInstance(inst, a.Spec, a.At, e.arrivalSeq, prog, inst.Tasks); err != nil {
		return nil, err
	}
	e.arrivalSeq++
	return inst, nil
}

// --- completion-event tracker ------------------------------------------------

// pushEvent records that handler h completes its running task at `at`.
// The heap is exact: every StatusRun handler has exactly one pending
// event (dispatch pushes, the monitor pass pops), so its minimum IS
// the next completion instant and its length the running-PE count.
func (e *Emulator) pushEvent(at vtime.Time, h int32) {
	s := e.opts.Scratch
	s.events = append(s.events, peEvent{at: at, h: h})
	// Sift up. Ties break on handler index for full determinism.
	ev := s.events
	i := len(ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if ev[parent].at < ev[i].at || (ev[parent].at == ev[i].at && ev[parent].h < ev[i].h) {
			break
		}
		ev[parent], ev[i] = ev[i], ev[parent]
		i = parent
	}
}

// peekEvent returns the earliest pending completion instant.
func (e *Emulator) peekEvent() (vtime.Time, bool) {
	ev := e.opts.Scratch.events
	if len(ev) == 0 {
		return 0, false
	}
	return ev[0].at, true
}

// popEventsDue removes every completion due at or before now and
// returns the handler indices in ascending order — the same order the
// reference workload manager's status scan observes them in.
func (e *Emulator) popEventsDue(now vtime.Time) []int32 {
	s := e.opts.Scratch
	due := s.due[:0]
	for len(s.events) > 0 && s.events[0].at <= now {
		due = append(due, s.events[0].h)
		// Standard binary-heap pop with sift-down.
		ev := s.events
		n := len(ev) - 1
		ev[0] = ev[n]
		s.events = ev[:n]
		ev = s.events
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < n && (ev[l].at < ev[min].at || (ev[l].at == ev[min].at && ev[l].h < ev[min].h)) {
				min = l
			}
			if r < n && (ev[r].at < ev[min].at || (ev[r].at == ev[min].at && ev[r].h < ev[min].h)) {
				min = r
			}
			if min == i {
				break
			}
			ev[i], ev[min] = ev[min], ev[i]
			i = min
		}
	}
	slices.Sort(due)
	s.due = due
	return due
}

// removeEvent cancels a handler's pending completion event — a PE
// fault discards its in-flight task, so the completion must never fire.
// Each running handler has exactly one heap entry; the scan is linear
// in the running-PE count, paid only on actual faults.
func (e *Emulator) removeEvent(h int32) {
	s := e.opts.Scratch
	ev := s.events
	for i := range ev {
		if ev[i].h != h {
			continue
		}
		n := len(ev) - 1
		ev[i] = ev[n]
		s.events = ev[:n]
		ev = s.events
		if i == n {
			return
		}
		less := func(a, b peEvent) bool {
			return a.at < b.at || (a.at == b.at && a.h < b.h)
		}
		// Restore the heap around the moved entry: sift down, and if it
		// did not move, sift up.
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			min := j
			if l < n && less(ev[l], ev[min]) {
				min = l
			}
			if r < n && less(ev[r], ev[min]) {
				min = r
			}
			if min == j {
				break
			}
			ev[j], ev[min] = ev[min], ev[j]
			j = min
		}
		for j > 0 {
			parent := (j - 1) / 2
			if less(ev[parent], ev[j]) {
				break
			}
			ev[parent], ev[j] = ev[j], ev[parent]
			j = parent
		}
		return
	}
}

// --- dynamic-platform events -------------------------------------------------

// applyPlatEventsDue applies every platform event due at or before now,
// in schedule order, and reports whether any was consumed. This runs at
// the very top of the loop — before injection and completion monitoring
// — so an event at instant T is visible to every decision at T, and a
// fault at T beats a completion due at the same T: the in-flight task
// is requeued, not collected.
func (e *Emulator) applyPlatEventsDue(now vtime.Time) bool {
	applied := false
	for e.evCursor < len(e.platEvents) && e.platEvents[e.evCursor].At <= now {
		ev := e.platEvents[e.evCursor]
		e.evCursor++
		switch ev.Kind {
		case platevent.Fault:
			e.faultPE(ev.PE, now)
		case platevent.Restore:
			e.restorePE(ev.PE)
		case platevent.SetSpeed:
			e.setSpeed(ev.PE, ev.Speed)
		case platevent.PowerCap:
			if pc, ok := e.opts.Policy.(sched.PowerCapped); ok {
				pc.SetPowerCap(ev.CapW)
			}
		}
		e.report.PlatEvents++
		applied = true
	}
	return applied
}

// faultPE takes a PE offline: its pending completion is cancelled, the
// in-flight task and every reserved task requeue as ready at the fault
// instant (in-flight first, then the reservation queue FIFO), and the
// PE leaves the indexed state atomically. Idempotent.
func (e *Emulator) faultPE(pi int, now vtime.Time) {
	h := e.handlers[pi]
	if h.faulted {
		return
	}
	h.faulted = true
	if h.status == StatusRun {
		e.removeEvent(h.idx)
		t := h.current
		h.current = nil
		e.requeue(t, now)
	}
	for h.queueLen() > 0 {
		e.requeue(h.dequeue(), now)
	}
	h.status = StatusFaulted
	h.busyUntil = 0
	if e.view != nil {
		e.view.FaultPE(pi)
	}
}

// requeue returns a fault-orphaned task to the ready list as of now.
// The partial execution is lost — no busy time or task count accrues to
// the dead PE — and the task will be dispatched afresh (its kernel,
// already run functionally, is not re-executed: Task.executed).
func (e *Emulator) requeue(t *Task, now vtime.Time) {
	t.choice = -1
	t.start, t.end = 0, 0
	t.busyDur = 0
	t.readyAt = now
	e.pushReady(t)
	e.report.Requeues++
}

// restorePE brings a faulted PE back online, idle. Idempotent.
func (e *Emulator) restorePE(pi int) {
	h := e.handlers[pi]
	if !h.faulted {
		return
	}
	h.faulted = false
	h.status = StatusIdle
	h.busyUntil = 0
	if e.view != nil {
		e.view.RestorePE(pi)
	}
}

// setSpeed applies a DVFS step: the handler's speed factor changes and
// the PE migrates to the cost class of its new signature — pre-interned
// at construction, so the lookup cannot fail here.
func (e *Emulator) setSpeed(pi int, speed float64) {
	h := e.handlers[pi]
	h.speed = speed
	if e.view != nil {
		e.view.SetClass(pi, e.view.InternClass(int32(h.TypeID()), speed, h.PowerW()))
	}
}

// pushReady appends a task to the ready list. With an indexed view
// the view's deque IS the ready list (one structure, one compaction);
// the emulator-owned slice only backs the no-view fallback.
func (e *Emulator) pushReady(t *Task) {
	if e.view != nil {
		e.view.PushReady(t, e.metaOf(t))
		return
	}
	e.ready = append(e.ready, t)
}

// metaOf resolves the ready metadata pushed with a task: the compiled
// per-node record, unless DVFS pre-interning extended the class table
// past the configuration's — then a per-node re-lowering against the
// view's table (View.MetaFor: the identical arithmetic, wider Costs),
// derived once per node and memoised for the emulator's lifetime.
func (e *Emulator) metaOf(t *Task) *sched.ReadyMeta {
	if e.dynMeta == nil {
		return &t.node.meta
	}
	nd := t.node
	if m, ok := e.dynMeta[nd]; ok {
		return m
	}
	m := new(sched.ReadyMeta)
	*m = e.view.MetaFor(nd.choices)
	e.dynMeta[nd] = m
	return m
}

// readyLen is the live ready count.
func (e *Emulator) readyLen() int {
	if e.view != nil {
		return e.view.ReadyLen()
	}
	return len(e.ready)
}

// consumeReady applies a scheduling batch's removals to the fallback
// ready slice with a plain order-preserving filter. The fallback is a
// cold path (exotic > 64-class configurations only), so it keeps the
// simplest correct shape; the performance-bearing equivalent for
// view-backed runs is View.CompactReady's prefix-consuming deque.
func (e *Emulator) consumeReady(remove []bool) {
	kept := e.ready[:0]
	for i, t := range e.ready {
		if !remove[i] {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(e.ready); i++ {
		e.ready[i] = nil // dropped slots must not pin instance slabs
	}
	e.ready = kept
}

// injectInstance marks the instance injected at now and appends its
// head tasks to the ready list.
func (e *Emulator) injectInstance(inst *AppInstance, now vtime.Time) {
	inst.injected = now
	for _, hid := range inst.prog.heads {
		t := &inst.Tasks[hid]
		t.readyAt = now
		e.pushReady(t)
	}
}

// injectDue injects every workload entry due at or before now —
// pre-instantiated instances on a slice run, lazily instantiated ones
// on a streamed run — and reports whether anything was injected.
func (e *Emulator) injectDue(now vtime.Time) (bool, error) {
	any := false
	if e.src == nil {
		for e.nextIdx < len(e.instances) && e.instances[e.nextIdx].Arrival <= now {
			e.injectInstance(e.instances[e.nextIdx], now)
			e.nextIdx++
			any = true
		}
		return any, nil
	}
	for e.havePending && e.pending.At <= now {
		inst, err := e.instantiateStream(e.pending)
		if err != nil {
			return any, err
		}
		if err := e.advancePending(); err != nil {
			return any, err
		}
		e.injectInstance(inst, now)
		any = true
	}
	return any, nil
}

// nextArrivalAt reports the next pending injection instant; ok=false
// when the workload is exhausted.
func (e *Emulator) nextArrivalAt() (vtime.Time, bool) {
	if e.src == nil {
		if e.nextIdx < len(e.instances) {
			return e.instances[e.nextIdx].Arrival, true
		}
		return 0, false
	}
	if e.havePending {
		return e.pending.At, true
	}
	return 0, false
}

// loop is the workload manager's execution flow (Figure 3) as a
// discrete-event loop.
func (e *Emulator) loop() error {
	dirty := true
	for {
		now := e.clock.Now()

		// Apply dynamic-platform events due now, before injection and
		// completion monitoring: a fault at T beats a completion due at
		// the same T (the in-flight task requeues instead of finishing).
		if e.applyPlatEventsDue(now) {
			dirty = true
		}

		// Inject applications whose arrival time has passed.
		if injected, err := e.injectDue(now); err != nil {
			return err
		} else if injected {
			dirty = true
		}

		// Monitor running PEs; collect completions and update the
		// ready list with newly unblocked tasks. The event tracker
		// yields exactly the handlers whose tasks are due, in handler
		// order — the order the reference implementation's full status
		// scan observes them in.
		completions := 0
		for _, hi := range e.popEventsDue(now) {
			h := e.handlers[hi]
			h.status = StatusComplete
			e.completeTask(h, now)
			completions++
			if e.view != nil {
				e.view.AddLoad(int(h.idx), -1)
			}
			// Reservation-queue PEs pull their next task locally,
			// without waiting for a scheduler invocation — the
			// low-overhead dispatch the paper's future work targets.
			if h.queueLen() > 0 {
				if err := e.dispatch(h.dequeue(), h, now); err != nil {
					return err
				}
			} else {
				h.status = StatusIdle
				if e.view != nil {
					e.view.MarkIdle(int(h.idx))
				}
			}
		}
		if completions > 0 {
			// The reference workload manager processes one completion
			// per poll of its loop, scanning every resource handler's
			// status field under its lock each time — so the charged
			// monitoring cost is one full handler scan per collected
			// completion. This PE-count proportionality is what makes
			// large configurations on a slow overlay lose ground
			// (Figure 11's 4BIG+3LTL inversion).
			e.pendingMonitorOps += monitorOpsPerPE * len(e.handlers) * completions
			dirty = true
		}

		// Run the heuristic scheduler over the ready list.
		if dirty && e.readyLen() > 0 {
			if _, err := e.schedule(); err != nil {
				return err
			}
			dirty = false
			// The overhead charge moved the clock; re-observe state
			// (arrivals or completions may have become due) before
			// advancing to the next event.
			continue
		}
		dirty = false

		// Advance the clock to the next event: the earlier of the next
		// arrival and the tracked next completion.
		nextEvent := vtime.Time(math.MaxInt64)
		arrAt, morePending := e.nextArrivalAt()
		if morePending {
			nextEvent = arrAt
		}
		anyRunning := false
		if at, ok := e.peekEvent(); ok {
			anyRunning = true
			if at < nextEvent {
				nextEvent = at
			}
		}
		if !anyRunning && !morePending {
			if e.readyLen() == 0 {
				// Emulation complete. Trailing platform events with
				// nothing running, ready or arriving never apply — they
				// cannot affect the makespan.
				return nil
			}
			if e.evCursor >= len(e.platEvents) {
				first := ""
				if e.view != nil {
					first = e.view.Ready()[0].Label()
				} else {
					first = e.ready[0].Label()
				}
				return fmt.Errorf("core: %d ready tasks cannot be scheduled on config %s (policy %s): first is %s",
					e.readyLen(), e.opts.Config.Name, e.opts.Policy.Name(), first)
			}
			// Ready tasks are stranded (their capable PEs faulted or
			// capped away), but platform events remain: one may free
			// them, so advance to it instead of declaring deadlock.
		}
		if e.evCursor < len(e.platEvents) && e.platEvents[e.evCursor].At < nextEvent {
			// applyPlatEventsDue consumed everything at or before now, so
			// the pending head is strictly in the future — the advance
			// below always makes progress.
			nextEvent = e.platEvents[e.evCursor].At
		}
		if nextEvent == vtime.Time(math.MaxInt64) {
			return fmt.Errorf("core: emulation stalled with no future event")
		}
		if nextEvent > now {
			if err := e.clock.AdvanceTo(nextEvent); err != nil {
				return err
			}
		}
	}
}

// schedule invokes the policy, charges the workload-manager overhead
// on the virtual clock (the overlay core is the serialising resource),
// and dispatches the returned assignments. Returns whether any task
// was dispatched or queued.
func (e *Emulator) schedule() (bool, error) {
	now := e.clock.Now()
	s := e.opts.Scratch
	var res sched.Result
	if e.view != nil {
		// The maintained view: indexed policies consume the per-type
		// idle bitmaps directly; everything else gets the incrementally
		// maintained ready slice plus the fixed PE table — either way,
		// nothing is rebuilt per invocation.
		if ip, ok := e.opts.Policy.(sched.IndexedPolicy); ok {
			res = ip.ScheduleIndexed(now, e.view)
		} else {
			res = e.opts.Policy.Schedule(now, e.view.Ready(), e.peViews)
		}
	} else {
		// Exotic configuration (> 64 interned cost classes): rebuild the ready
		// view per invocation from scratch buffers. The Policy contract
		// forbids retaining the slices, so the buffers are safe to
		// reuse across invocations and across emulations.
		readyViews := s.readyViews[:0]
		for _, t := range e.ready {
			readyViews = append(readyViews, t)
		}
		s.readyViews = readyViews
		res = e.opts.Policy.Schedule(now, readyViews, e.peViews)
	}

	ops := res.Ops + e.pendingMonitorOps + invocationBaseOps +
		dispatchOpsPerTask*len(res.Assignments)
	e.pendingMonitorOps = 0
	overhead := vtime.Duration(float64(ops) * e.opts.Config.Overlay.SchedOpNS)
	e.report.Sched.Invocations++
	e.report.Sched.TotalOps += int64(ops)
	e.report.Sched.OverheadNS += int64(overhead)
	e.report.Sched.TotalReadyLn += int64(e.readyLen())
	if e.readyLen() > e.report.Sched.MaxReadyLen {
		e.report.Sched.MaxReadyLen = e.readyLen()
	}
	if err := e.clock.Advance(overhead); err != nil {
		return false, err
	}
	dispatchAt := e.clock.Now()

	if len(res.Assignments) == 0 {
		sched.ReleaseResult(&res)
		return false, nil
	}
	// Validate and apply the batch. The masks live in scratch under an
	// all-false invariant: only the batch's own indices are dirtied, and
	// they are reset after the batch is applied, so checking one out
	// costs O(batch), not an O(window) clear per invocation (error
	// paths abort the run, and beginRun re-clears defensively).
	// Assignment TaskIndex values are window-relative, like the view
	// the policy saw.
	var window []*Task
	var viewWin []sched.Task
	if e.view != nil {
		viewWin = e.view.Ready()
	} else {
		window = e.ready
	}
	winLen := len(window) + len(viewWin)
	taken := s.takenMask(len(e.handlers))
	remove := s.removeMask(winLen)
	for _, a := range res.Assignments {
		if a.TaskIndex < 0 || a.TaskIndex >= winLen || a.PEIndex < 0 || a.PEIndex >= len(e.handlers) {
			return false, fmt.Errorf("core: policy %s produced out-of-range assignment %+v", e.opts.Policy.Name(), a)
		}
		if remove[a.TaskIndex] {
			return false, fmt.Errorf("core: policy %s assigned task %d twice", e.opts.Policy.Name(), a.TaskIndex)
		}
		h := e.handlers[a.PEIndex]
		var t *Task
		if viewWin != nil {
			t = viewWin[a.TaskIndex].(*Task)
		} else {
			t = window[a.TaskIndex]
		}
		if t.node.choiceByType[h.typeIdx] < 0 {
			return false, fmt.Errorf("core: policy %s sent %s to unsupported PE %s",
				e.opts.Policy.Name(), t.Label(), h.PE.Label())
		}
		if h.faulted {
			return false, fmt.Errorf("core: policy %s assigned %s to faulted PE %s",
				e.opts.Policy.Name(), t.Label(), h.PE.Label())
		}
		if h.status != StatusIdle {
			if !e.opts.Policy.UsesQueues() {
				return false, fmt.Errorf("core: policy %s assigned busy PE %s", e.opts.Policy.Name(), h.PE.Label())
			}
			h.enqueue(t)
		} else if taken[a.PEIndex] {
			if !e.opts.Policy.UsesQueues() {
				return false, fmt.Errorf("core: policy %s double-booked PE %s", e.opts.Policy.Name(), h.PE.Label())
			}
			h.enqueue(t)
		} else {
			if err := e.dispatch(t, h, dispatchAt); err != nil {
				return false, err
			}
			taken[a.PEIndex] = true
		}
		if e.view != nil {
			// One task handed to the handler, dispatched or reserved.
			e.view.AddLoad(a.PEIndex, 1)
		}
		remove[a.TaskIndex] = true
	}
	if e.view != nil {
		e.view.CompactReady(remove, len(res.Assignments))
	} else {
		e.consumeReady(remove)
	}
	// Restore the masks' all-false invariant at O(batch).
	for _, a := range res.Assignments {
		remove[a.TaskIndex] = false
		taken[a.PEIndex] = false
	}
	// The batch is fully applied; recycle its buffer. Error paths above
	// leave the buffer to the garbage collector — the emulation is
	// aborting anyway.
	sched.ReleaseResult(&res)
	return true, nil
}

// dispatch starts a task on a PE: functional execution against the
// instance memory plus the duration model of the resource manager
// (Figure 4): direct execution on cores, DMA-in / compute / DMA-out on
// accelerators with host-core contention.
func (e *Emulator) dispatch(t *Task, h *ResourceHandler, now vtime.Time) error {
	ci := t.node.choiceByType[h.typeIdx]
	if ci < 0 {
		return fmt.Errorf("core: dispatch of %s to unsupported PE %s", t.Label(), h.PE.Label())
	}
	plat := &t.node.spec.Platforms[ci]

	var measuredNS int64
	if !e.opts.SkipExecution && !t.executed {
		f := t.node.funcs[ci]
		ctx := &kernels.Context{Mem: t.App.Mem, Args: t.node.spec.Arguments, Node: t.node.name}
		//repolint:allow novtime TimingMeasured mode deliberately measures real kernel wall time; modeled-timing runs never read this
		start := time.Now()
		if err := f(ctx); err != nil {
			return fmt.Errorf("core: task %s failed on %s: %w", t.Label(), h.PE.Label(), err)
		}
		//repolint:allow novtime paired with the TimingMeasured wall-clock read above
		measuredNS = time.Since(start).Nanoseconds()
		// A fault can requeue and re-dispatch this task; its kernel has
		// now run against the instance memory and must not run twice.
		t.executed = true
	}

	dur, busy := e.taskDuration(t, h, plat, measuredNS)
	t.choice = ci
	t.busyDur = busy
	t.start = now
	t.end = now.Add(dur)
	h.current = t
	h.status = StatusRun
	h.busyUntil = t.end
	if e.view != nil {
		e.view.MarkBusy(int(h.idx))
		e.view.SetAvail(int(h.idx), t.end)
	}
	e.pushEvent(t.end, h.idx)
	return nil
}

// taskDuration applies the timing model. It returns the task's total
// occupancy of the PE slot and the portion that counts as PE "usage"
// for utilisation statistics: for CPU cores the two coincide, but an
// accelerator is only in use while computing and streaming data — the
// host-side DMA setup and manager-thread contention leave the IP idle,
// which is why the paper's Figure 9b shows FFT accelerator utilisation
// far below CPU utilisation.
func (e *Emulator) taskDuration(t *Task, h *ResourceHandler, plat *appmodel.PlatformSpec, measuredNS int64) (total, busy vtime.Duration) {
	var base, used float64
	switch h.PE.Type.Class {
	case platform.CPU:
		cost := float64(plat.CostNS)
		if e.opts.Timing == Measured && measuredNS > 0 {
			cost = float64(measuredNS)
		}
		base = cost * h.speed
		used = base
	case platform.Accelerator:
		compute := float64(plat.ComputeNS)
		if compute == 0 {
			compute = float64(plat.CostNS)
		}
		if e.opts.Timing == Measured && measuredNS > 0 {
			compute = float64(measuredNS) * measuredAccelComputeFactor
		}
		bytes := t.node.dataBytes
		xfer := e.opts.Config.DMA.TransferNS(bytes, h.PE.Share) * 2
		base = compute + xfer
		stream := 2 * float64(bytes) * e.opts.Config.DMA.NSPerByte
		used = compute + stream
	}
	if base < 1 {
		base = 1
	}
	if used > base {
		used = base
	}
	total = e.jitter.Scale(vtime.Duration(base))
	// Scale the busy share proportionally with the jitter.
	busy = vtime.Duration(float64(total) * used / base)
	return total, busy
}

// completeTask finalises the task on handler h at virtual time now:
// records statistics, decrements successors' predecessor counts, and
// appends newly-ready tasks to the ready list.
func (e *Emulator) completeTask(h *ResourceHandler, now vtime.Time) {
	t := h.current
	h.current = nil
	h.busyNS += int64(t.busyDur)
	h.tasks++

	rec := stats.TaskRecord{
		App:      t.App.Spec.AppName,
		Instance: t.App.Index,
		Node:     t.node.name,
		PEID:     h.PE.ID,
		PELabel:  h.PE.Label(),
		Platform: t.assignedKey(),
		Ready:    t.readyAt,
		Start:    t.start,
		End:      t.end,
	}
	if sink := e.opts.Sink; sink != nil {
		sink.RecordTask(rec)
	} else {
		e.report.Tasks = append(e.report.Tasks, rec)
	}

	inst := t.App
	inst.remaining--
	if inst.remaining == 0 {
		inst.done = now
		app := stats.AppRecord{
			App:      inst.Spec.AppName,
			Instance: inst.Index,
			Arrival:  inst.Arrival,
			Injected: inst.injected,
			Done:     now,
			Tasks:    len(inst.Tasks),
		}
		if sink := e.opts.Sink; sink != nil {
			sink.RecordApp(app)
		} else {
			e.report.Apps = append(e.report.Apps, app)
		}
		if e.src != nil {
			// Streamed runs recycle the finished instance: every task
			// is complete, so no live pointer into its slab remains.
			inst.Mem = nil
			if e.freeInst == nil {
				e.freeInst = make(map[*Program][]*AppInstance)
			}
			e.freeInst[inst.prog] = append(e.freeInst[inst.prog], inst)
		}
	}
	for _, sid := range t.node.succs {
		st := &inst.Tasks[sid]
		st.remainingPreds--
		if st.remainingPreds == 0 {
			st.readyAt = now
			e.pushReady(st)
		}
	}
}

// Handlers exposes the resource handlers for tests.
func (e *Emulator) Handlers() []*ResourceHandler { return e.handlers }

// Instances exposes the instantiated applications of the last Run so
// callers can inspect final variable memory (functional verification).
// The instances are backed by the emulator's Scratch: they stay valid
// until the next Run against the same Scratch (for the default private
// scratch, until this emulator's next Run).
//
// After RunStream there is nothing to expose — completed instances are
// recycled through free lists — so calling Instances then panics
// instead of silently returning an empty slice (the trap that used to
// make streamed functional checks vacuously pass).
func (e *Emulator) Instances() []*AppInstance {
	if e.streamed {
		panic("core: Instances() after RunStream: streamed instances are recycled; " +
			"inspect memory with Run, or collect records through a stats.Sink")
	}
	return e.instances
}
