package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// ExecTiming selects how task durations are obtained.
type ExecTiming int

const (
	// Modeled uses the calibrated platform timing model (the default;
	// fully deterministic).
	Modeled ExecTiming = iota
	// Measured times the actual Go kernel execution on the host and
	// scales it by the PE speed factor — closer in spirit to the
	// paper's real-hardware emulation, but host-dependent.
	Measured
)

// Overhead charging weights: abstract operation counts for the
// workload-manager work that the paper's Figure 10b measures around
// the policy invocation itself (completion monitoring, ready-queue
// update, communicating tasks to resource managers). Multiplied by the
// overlay core's SchedOpNS.
const (
	// monitorOpsPerPE covers acquiring the resource-handler lock,
	// reading the status field, and updating the ready list.
	monitorOpsPerPE = 6
	// dispatchOpsPerTask covers transferring one scheduled task to its
	// resource manager through the handler.
	dispatchOpsPerTask = 10
	// invocationBaseOps is the fixed entry/exit cost per scheduler
	// invocation.
	invocationBaseOps = 8
	// measuredAccelComputeFactor scales a host-measured CPU kernel
	// time to the accelerator's compute time in Measured mode (the
	// pipelined IP computes faster than the A53 but sits behind DMA).
	measuredAccelComputeFactor = 0.12
)

// Options configures an Emulator.
type Options struct {
	// Config is the emulated DSSoC hardware configuration.
	Config *platform.Config
	// Policy is the task scheduling heuristic.
	Policy sched.Policy
	// Registry resolves runfunc symbols; kernels.Default() plus the
	// application library is typical.
	Registry *kernels.Registry
	// Seed drives the jitter model (and nothing else).
	Seed int64
	// JitterSigma is the log-normal run-to-run noise level; 0 for
	// fully deterministic timing.
	JitterSigma float64
	// Timing selects modeled or host-measured task durations.
	Timing ExecTiming
	// SkipExecution disables functional kernel execution, leaving a
	// pure timing simulation. Used by large scheduler sweeps where
	// the numeric results are not inspected.
	SkipExecution bool
	// Scratch supplies reusable working buffers, letting sweep
	// workers amortise the emulator's per-run allocations across many
	// cells. nil allocates a private scratch; a non-nil scratch must
	// not be used by two emulators concurrently.
	Scratch *Scratch
}

// Arrival pairs an application archetype with its injection timestamp
// relative to the emulation reference start time.
type Arrival struct {
	Spec *appmodel.AppSpec
	At   vtime.Time
}

// Emulator runs one emulation: it owns the virtual clock, the resource
// handlers, and the statistics collector.
type Emulator struct {
	opts     Options
	clock    vtime.Clock
	jitter   *vtime.Jitter
	handlers []*ResourceHandler

	ready     []*Task
	instances []*AppInstance

	report            *stats.Report
	pendingMonitorOps int
}

// New validates the options and builds an emulator.
func New(opts Options) (*Emulator, error) {
	if opts.Config == nil || len(opts.Config.PEs) == 0 {
		return nil, fmt.Errorf("core: configuration with at least one PE required")
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("core: scheduling policy required")
	}
	if opts.Registry == nil {
		return nil, fmt.Errorf("core: kernel registry required")
	}
	if opts.Scratch == nil {
		opts.Scratch = NewScratch()
	}
	e := &Emulator{
		opts:   opts,
		jitter: vtime.NewJitter(opts.Seed, opts.JitterSigma),
	}
	for _, pe := range opts.Config.PEs {
		e.handlers = append(e.handlers, &ResourceHandler{PE: pe, status: StatusIdle})
	}
	return e, nil
}

// instantiate performs the application handler's parse-time work for
// one workload entry: memory allocation/initialisation and runfunc
// symbol resolution, failing fast on unknown symbols or unsupported
// platforms exactly as the paper's parser does.
func (e *Emulator) instantiate(spec *appmodel.AppSpec, index int, arrival vtime.Time) (*AppInstance, error) {
	mem, err := appmodel.NewMemory(spec)
	if err != nil {
		return nil, err
	}
	inst := &AppInstance{
		Spec:    spec,
		Index:   index,
		Arrival: arrival,
		Mem:     mem,
		Tasks:   make(map[string]*Task, len(spec.DAG)),
	}
	for name, node := range spec.DAG {
		t := &Task{
			App:            inst,
			Name:           name,
			Spec:           node,
			funcs:          make(map[string]kernels.Func, len(node.Platforms)),
			remainingPreds: len(node.Predecessors),
		}
		supported := false
		for _, p := range node.Platforms {
			so := p.SharedObject
			if so == "" {
				so = spec.SharedObject
			}
			f, err := e.opts.Registry.Lookup(so, p.RunFunc)
			if err != nil {
				return nil, fmt.Errorf("core: %s node %s: %w", spec.AppName, name, err)
			}
			t.funcs[p.Name] = f
			t.choices = append(t.choices, sched.PlatformChoice{Key: p.Name, CostNS: p.CostNS})
			if e.opts.Config.SupportsKey(p.Name) {
				supported = true
			}
		}
		if !supported {
			return nil, fmt.Errorf("core: %s node %s supports no PE present in config %s",
				spec.AppName, name, e.opts.Config.Name)
		}
		inst.Tasks[name] = t
	}
	inst.remaining = len(inst.Tasks)
	return inst, nil
}

// Run executes the emulation for the given workload and returns the
// collected statistics. The emulator is single-use: each Run starts a
// fresh clock and fresh state.
func (e *Emulator) Run(arrivals []Arrival) (*stats.Report, error) {
	e.clock.Reset()
	e.ready = e.opts.Scratch.ready[:0]
	e.instances = nil
	e.pendingMonitorOps = 0
	// Re-seed so repeated Runs of one emulator are identical.
	e.jitter = vtime.NewJitter(e.opts.Seed, e.opts.JitterSigma)
	for _, h := range e.handlers {
		h.status = StatusIdle
		h.current = nil
		h.busyUntil = 0
		h.queue = nil
		h.busyNS = 0
		h.tasks = 0
	}
	e.report = &stats.Report{
		ConfigName: e.opts.Config.Name,
		PolicyName: e.opts.Policy.Name(),
		Tasks:      e.opts.Scratch.taskRecords(),
	}
	// Hand the ready backing array and the realised task count back to
	// the scratch on every exit — error paths included, since a pooled
	// scratch must never pin a dead emulation's tasks or instance
	// memory past the Run that produced them.
	defer func() {
		e.opts.Scratch.ready = e.ready[:0]
		e.opts.Scratch.noteTaskCount(len(e.report.Tasks))
		e.opts.Scratch.release()
	}()

	// Initialisation phase: instantiate every workload entry (memory
	// allocation + symbol resolution), then sort the workload queue by
	// arrival time. The sorted copy lives in scratch; it is consumed
	// during instantiation and never escapes.
	sorted := e.opts.Scratch.sortedArrivals(arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for i, a := range sorted {
		if a.Spec == nil {
			return nil, fmt.Errorf("core: workload entry %d has no application", i)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("core: workload entry %d has negative arrival %v", i, a.At)
		}
		inst, err := e.instantiate(a.Spec, i, a.At)
		if err != nil {
			return nil, err
		}
		e.instances = append(e.instances, inst)
	}

	if err := e.loop(); err != nil {
		return nil, err
	}

	e.report.Makespan = vtime.Duration(e.clock.Now())
	for _, h := range e.handlers {
		e.report.PEs = append(e.report.PEs, stats.PEStats{
			PEID:    h.PE.ID,
			Label:   h.PE.Label(),
			BusyNS:  h.busyNS,
			Tasks:   h.tasks,
			EnergyJ: float64(h.busyNS) * h.PE.Type.PowerW * 1e-9,
		})
	}
	return e.report, nil
}

// loop is the workload manager's execution flow (Figure 3) as a
// discrete-event loop.
func (e *Emulator) loop() error {
	next := 0 // next workload-queue entry to inject
	dirty := true
	for {
		now := e.clock.Now()

		// Inject applications whose arrival time has passed.
		for next < len(e.instances) && e.instances[next].Arrival <= now {
			inst := e.instances[next]
			next++
			inst.injected = now
			for _, head := range inst.Spec.Heads() {
				t := inst.Tasks[head]
				t.readyAt = now
				e.ready = append(e.ready, t)
			}
			dirty = true
		}

		// Monitor running PEs; collect completions and update the
		// ready list with newly unblocked tasks.
		completions := 0
		for _, h := range e.handlers {
			if h.status == StatusRun && h.busyUntil <= now {
				h.status = StatusComplete
			}
			if h.status == StatusComplete {
				e.completeTask(h, now)
				completions++
				// Reservation-queue PEs pull their next task locally,
				// without waiting for a scheduler invocation — the
				// low-overhead dispatch the paper's future work
				// targets.
				if len(h.queue) > 0 {
					nextTask := h.queue[0]
					h.queue = h.queue[1:]
					if err := e.dispatch(nextTask, h, now); err != nil {
						return err
					}
				} else {
					h.status = StatusIdle
				}
			}
		}
		if completions > 0 {
			// The reference workload manager processes one completion
			// per poll of its loop, scanning every resource handler's
			// status field under its lock each time — so the charged
			// monitoring cost is one full handler scan per collected
			// completion. This PE-count proportionality is what makes
			// large configurations on a slow overlay lose ground
			// (Figure 11's 4BIG+3LTL inversion).
			e.pendingMonitorOps += monitorOpsPerPE * len(e.handlers) * completions
			dirty = true
		}

		// Run the heuristic scheduler over the ready list.
		if dirty && len(e.ready) > 0 {
			if _, err := e.schedule(); err != nil {
				return err
			}
			dirty = false
			// The overhead charge moved the clock; re-observe state
			// (arrivals or completions may have become due) before
			// advancing to the next event.
			continue
		}
		dirty = false

		// Advance the clock to the next event.
		nextEvent := vtime.Time(math.MaxInt64)
		if next < len(e.instances) {
			nextEvent = e.instances[next].Arrival
		}
		anyRunning := false
		for _, h := range e.handlers {
			if h.status == StatusRun {
				anyRunning = true
				if h.busyUntil < nextEvent {
					nextEvent = h.busyUntil
				}
			}
		}
		if !anyRunning && next >= len(e.instances) {
			if len(e.ready) > 0 {
				return fmt.Errorf("core: %d ready tasks cannot be scheduled on config %s (policy %s): first is %s",
					len(e.ready), e.opts.Config.Name, e.opts.Policy.Name(), e.ready[0].Label())
			}
			return nil // emulation complete
		}
		if nextEvent == vtime.Time(math.MaxInt64) {
			return fmt.Errorf("core: emulation stalled with no future event")
		}
		if nextEvent > now {
			if err := e.clock.AdvanceTo(nextEvent); err != nil {
				return err
			}
		}
	}
}

// schedule invokes the policy, charges the workload-manager overhead
// on the virtual clock (the overlay core is the serialising resource),
// and dispatches the returned assignments. Returns whether any task
// was dispatched or queued.
func (e *Emulator) schedule() (bool, error) {
	now := e.clock.Now()
	// The view slices come from scratch: the Policy contract forbids
	// retaining them past the Schedule call, so the buffers are safe to
	// reuse across invocations and across emulations.
	s := e.opts.Scratch
	readyViews := s.readyViews[:0]
	for _, t := range e.ready {
		readyViews = append(readyViews, t)
	}
	s.readyViews = readyViews
	peViews := s.peViews[:0]
	for _, h := range e.handlers {
		peViews = append(peViews, h)
	}
	s.peViews = peViews
	res := e.opts.Policy.Schedule(now, readyViews, peViews)

	ops := res.Ops + e.pendingMonitorOps + invocationBaseOps +
		dispatchOpsPerTask*len(res.Assignments)
	e.pendingMonitorOps = 0
	overhead := vtime.Duration(float64(ops) * e.opts.Config.Overlay.SchedOpNS)
	e.report.Sched.Invocations++
	e.report.Sched.TotalOps += int64(ops)
	e.report.Sched.OverheadNS += int64(overhead)
	e.report.Sched.TotalReadyLn += int64(len(e.ready))
	if len(e.ready) > e.report.Sched.MaxReadyLen {
		e.report.Sched.MaxReadyLen = len(e.ready)
	}
	if err := e.clock.Advance(overhead); err != nil {
		return false, err
	}
	dispatchAt := e.clock.Now()

	if len(res.Assignments) == 0 {
		return false, nil
	}
	// Validate and apply the batch.
	taken := make(map[int]bool, len(res.Assignments))
	remove := make([]bool, len(e.ready))
	for _, a := range res.Assignments {
		if a.TaskIndex < 0 || a.TaskIndex >= len(e.ready) || a.PEIndex < 0 || a.PEIndex >= len(e.handlers) {
			return false, fmt.Errorf("core: policy %s produced out-of-range assignment %+v", e.opts.Policy.Name(), a)
		}
		if remove[a.TaskIndex] {
			return false, fmt.Errorf("core: policy %s assigned task %d twice", e.opts.Policy.Name(), a.TaskIndex)
		}
		h := e.handlers[a.PEIndex]
		t := e.ready[a.TaskIndex]
		if _, ok := t.Spec.PlatformFor(h.PE.Type.Key); !ok {
			return false, fmt.Errorf("core: policy %s sent %s to unsupported PE %s",
				e.opts.Policy.Name(), t.Label(), h.PE.Label())
		}
		if h.status != StatusIdle {
			if !e.opts.Policy.UsesQueues() {
				return false, fmt.Errorf("core: policy %s assigned busy PE %s", e.opts.Policy.Name(), h.PE.Label())
			}
			h.queue = append(h.queue, t)
		} else if taken[a.PEIndex] {
			if !e.opts.Policy.UsesQueues() {
				return false, fmt.Errorf("core: policy %s double-booked PE %s", e.opts.Policy.Name(), h.PE.Label())
			}
			h.queue = append(h.queue, t)
		} else {
			if err := e.dispatch(t, h, dispatchAt); err != nil {
				return false, err
			}
			taken[a.PEIndex] = true
		}
		remove[a.TaskIndex] = true
	}
	kept := e.ready[:0]
	for i, t := range e.ready {
		if !remove[i] {
			kept = append(kept, t)
		}
	}
	e.ready = kept
	return true, nil
}

// dispatch starts a task on a PE: functional execution against the
// instance memory plus the duration model of the resource manager
// (Figure 4): direct execution on cores, DMA-in / compute / DMA-out on
// accelerators with host-core contention.
func (e *Emulator) dispatch(t *Task, h *ResourceHandler, now vtime.Time) error {
	key := h.PE.Type.Key
	plat, ok := t.Spec.PlatformFor(key)
	if !ok {
		return fmt.Errorf("core: dispatch of %s to unsupported PE %s", t.Label(), h.PE.Label())
	}

	var measuredNS int64
	if !e.opts.SkipExecution {
		f := t.funcs[key]
		ctx := &kernels.Context{Mem: t.App.Mem, Args: t.Spec.Arguments, Node: t.Name}
		start := time.Now()
		if err := f(ctx); err != nil {
			return fmt.Errorf("core: task %s failed on %s: %w", t.Label(), h.PE.Label(), err)
		}
		measuredNS = time.Since(start).Nanoseconds()
	}

	dur, busy := e.taskDuration(t, h, plat, measuredNS)
	t.assignedKey = key
	t.busyDur = busy
	t.start = now
	t.end = now.Add(dur)
	h.current = t
	h.status = StatusRun
	h.busyUntil = t.end
	return nil
}

// taskDuration applies the timing model. It returns the task's total
// occupancy of the PE slot and the portion that counts as PE "usage"
// for utilisation statistics: for CPU cores the two coincide, but an
// accelerator is only in use while computing and streaming data — the
// host-side DMA setup and manager-thread contention leave the IP idle,
// which is why the paper's Figure 9b shows FFT accelerator utilisation
// far below CPU utilisation.
func (e *Emulator) taskDuration(t *Task, h *ResourceHandler, plat appmodel.PlatformSpec, measuredNS int64) (total, busy vtime.Duration) {
	var base, used float64
	switch h.PE.Type.Class {
	case platform.CPU:
		cost := float64(plat.CostNS)
		if e.opts.Timing == Measured && measuredNS > 0 {
			cost = float64(measuredNS)
		}
		base = cost * h.PE.Type.SpeedFactor
		used = base
	case platform.Accelerator:
		compute := float64(plat.ComputeNS)
		if compute == 0 {
			compute = float64(plat.CostNS)
		}
		if e.opts.Timing == Measured && measuredNS > 0 {
			compute = float64(measuredNS) * measuredAccelComputeFactor
		}
		bytes := t.App.Spec.DataBytes(t.Name)
		xfer := e.opts.Config.DMA.TransferNS(bytes, h.PE.Share) * 2
		base = compute + xfer
		stream := 2 * float64(bytes) * e.opts.Config.DMA.NSPerByte
		used = compute + stream
	}
	if base < 1 {
		base = 1
	}
	if used > base {
		used = base
	}
	total = e.jitter.Scale(vtime.Duration(base))
	// Scale the busy share proportionally with the jitter.
	busy = vtime.Duration(float64(total) * used / base)
	return total, busy
}

// completeTask finalises the task on handler h at virtual time now:
// records statistics, decrements successors' predecessor counts, and
// appends newly-ready tasks to the ready list.
func (e *Emulator) completeTask(h *ResourceHandler, now vtime.Time) {
	t := h.current
	h.current = nil
	h.busyNS += int64(t.busyDur)
	h.tasks++

	e.report.Tasks = append(e.report.Tasks, stats.TaskRecord{
		App:      t.App.Spec.AppName,
		Instance: t.App.Index,
		Node:     t.Name,
		PEID:     h.PE.ID,
		PELabel:  h.PE.Label(),
		Platform: t.assignedKey,
		Ready:    t.readyAt,
		Start:    t.start,
		End:      t.end,
	})

	inst := t.App
	inst.remaining--
	if inst.remaining == 0 {
		inst.done = now
		e.report.Apps = append(e.report.Apps, stats.AppRecord{
			App:      inst.Spec.AppName,
			Instance: inst.Index,
			Arrival:  inst.Arrival,
			Injected: inst.injected,
			Done:     now,
			Tasks:    len(inst.Tasks),
		})
	}
	for _, succ := range t.Spec.Successors {
		st := inst.Tasks[succ]
		st.remainingPreds--
		if st.remainingPreds == 0 {
			st.readyAt = now
			e.ready = append(e.ready, st)
		}
	}
}

// Handlers exposes the resource handlers for tests.
func (e *Emulator) Handlers() []*ResourceHandler { return e.handlers }

// Instances exposes the instantiated applications of the last Run so
// callers can inspect final variable memory (functional verification).
func (e *Emulator) Instances() []*AppInstance { return e.instances }
