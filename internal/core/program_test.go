package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// fourApps returns the paper's application library as (name, spec)
// pairs in a fixed order.
func fourApps() []*appmodel.AppSpec {
	return []*appmodel.AppSpec{
		apps.RangeDetection(apps.DefaultRangeParams()),
		apps.PulseDoppler(apps.DefaultDopplerParams()),
		apps.WiFiTX(apps.DefaultWiFiParams()),
		apps.WiFiRX(apps.DefaultWiFiParams()),
	}
}

// referenceCompile is an independent, deliberately naive map-based
// lowering of an AppSpec — the shape of the emulator's pre-compilation
// per-arrival instantiation: string-keyed maps, repeated registry
// lookups, per-node slices, IDs assigned by topological order rather
// than Compile's sorted-name order. The differential tests run the
// emulator against this reference template and require reports
// identical to the compiled path, so any behavioural shortcut in
// Compile (head order, successor order, platform entry order, symbol
// binding) shows up as a report diff.
func referenceCompile(t *testing.T, spec *appmodel.AppSpec, cfg *platform.Config, reg *kernels.Registry) *Program {
	t.Helper()
	order, err := spec.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]int32{}
	for i, name := range order {
		ids[name] = int32(i)
	}
	p := &Program{Spec: spec, nodes: make([]progNode, len(order))}
	for i, name := range order {
		node := spec.DAG[name]
		pn := &p.nodes[i]
		pn.name = name
		pn.spec = node
		pn.preds = int32(len(node.Predecessors))
		pn.dataBytes = spec.DataBytes(name)
		for _, succ := range node.Successors {
			pn.succs = append(pn.succs, ids[succ])
		}
		for _, plat := range node.Platforms {
			so := plat.SharedObject
			if so == "" {
				so = spec.SharedObject
			}
			f, err := reg.Lookup(so, plat.RunFunc)
			if err != nil {
				t.Fatal(err)
			}
			pn.choices = append(pn.choices, sched.PlatformChoice{
				Key:    plat.Name,
				TypeID: cfg.TypeIndex(plat.Name),
				CostNS: plat.CostNS,
			})
			pn.funcs = append(pn.funcs, f)
		}
		pn.choiceByType = make([]int32, cfg.NumTypes())
		for ti := range pn.choiceByType {
			pn.choiceByType[ti] = -1
		}
		for ci, c := range pn.choices {
			if c.TypeID >= 0 && pn.choiceByType[c.TypeID] < 0 {
				pn.choiceByType[c.TypeID] = int32(ci)
			}
		}
		// The indexed-scheduler metadata is part of the progNode
		// contract; derive it independently from this lowering's own
		// choice list, over the configuration's cost classes.
		pn.meta = sched.ReadyMeta{NumChoices: int32(len(pn.choices))}
		classes := cfg.Classes()
		pn.meta.Costs = make([]int64, len(classes))
		for c, sig := range classes {
			if ci := pn.choiceByType[sig.TypeIdx]; ci >= 0 {
				pn.meta.ClassMask |= 1 << uint(c)
				pn.meta.Costs[c] = int64(float64(pn.choices[ci].CostNS) * sig.Speed)
			}
		}
		bestType := int32(-1)
		var bestCost int64 = -1
		for _, c := range pn.choices {
			if bestCost < 0 || c.CostNS < bestCost {
				bestCost = c.CostNS
				bestType = int32(c.TypeID)
			}
		}
		for c, sig := range classes {
			if bestType >= 0 && int32(sig.TypeIdx) == bestType {
				pn.meta.METMask |= 1 << uint(c)
			}
		}
	}
	// Heads in sorted-name order, exactly as AppSpec.Heads yields them.
	for _, name := range spec.Heads() {
		p.heads = append(p.heads, ids[name])
	}
	return p
}

// primedCache returns a ProgramCache whose only entries are the given
// reference templates, so an emulator using it runs the map-derived
// lowering instead of Compile's.
func primedCache(progs map[*appmodel.AppSpec]*Program, cfg *platform.Config, reg *kernels.Registry) *ProgramCache {
	c := NewProgramCache()
	for spec, p := range progs {
		c.m[programKey{spec: spec, cfg: cfg, reg: reg}] = p
	}
	return c
}

// TestCompiledMatchesMapReference is the determinism contract of the
// compile/instantiate split: for all four applications under all
// seven policies, the compiled path must produce a stats.Report
// identical — task by task, field by field — to a run instantiated
// from the naive map-based reference lowering.
func TestCompiledMatchesMapReference(t *testing.T) {
	cfg := zcu(t, 3, 2)
	reg := apps.Registry()
	specs := fourApps()
	refs := map[*appmodel.AppSpec]*Program{}
	for _, spec := range specs {
		refs[spec] = referenceCompile(t, spec, cfg, reg)
	}
	ref := primedCache(refs, cfg, reg)

	var arrivals []Arrival
	for i, spec := range specs {
		arrivals = append(arrivals,
			Arrival{Spec: spec, At: vtime.Time(i) * 25_000},
			Arrival{Spec: spec, At: 300_000 + vtime.Time(i)*40_000},
		)
	}
	for _, policyName := range sched.Names() {
		run := func(programs *ProgramCache) *stats.Report {
			policy, err := sched.New(policyName, 3)
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(Options{
				Config:        cfg,
				Policy:        policy,
				Registry:      reg,
				Seed:          9,
				JitterSigma:   0.02,
				SkipExecution: true,
				Programs:      programs,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run(arrivals)
			if err != nil {
				t.Fatalf("%s: %v", policyName, err)
			}
			return rep
		}
		compiled := run(nil) // shared cache -> Compile path
		reference := run(ref)
		compareReports(t, reference, compiled)
	}
}

// TestCompileLowering checks the template structure directly against
// the spec: dense sorted-name IDs, head order, successor order,
// predecessor counts, platform alignment and symbol binding.
func TestCompileLowering(t *testing.T) {
	cfg := zcu(t, 3, 2)
	reg := apps.Registry()
	for _, spec := range fourApps() {
		p, err := Compile(spec, cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		if p.TaskCount() != len(spec.DAG) {
			t.Fatalf("%s: %d nodes, want %d", spec.AppName, p.TaskCount(), len(spec.DAG))
		}
		names := make([]string, 0, len(spec.DAG))
		for name := range spec.DAG {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if p.nodes[i].name != name || p.NodeID(name) != i {
				t.Fatalf("%s: node %q not at sorted position %d (NodeID=%d)",
					spec.AppName, name, i, p.NodeID(name))
			}
			node := spec.DAG[name]
			pn := &p.nodes[i]
			if int(pn.preds) != len(node.Predecessors) {
				t.Fatalf("%s/%s: preds %d want %d", spec.AppName, name, pn.preds, len(node.Predecessors))
			}
			if len(pn.succs) != len(node.Successors) {
				t.Fatalf("%s/%s: %d succs want %d", spec.AppName, name, len(pn.succs), len(node.Successors))
			}
			for si, succ := range node.Successors {
				if p.nodes[pn.succs[si]].name != succ {
					t.Fatalf("%s/%s: succ %d is %q want %q",
						spec.AppName, name, si, p.nodes[pn.succs[si]].name, succ)
				}
			}
			if len(pn.choices) != len(node.Platforms) || len(pn.funcs) != len(node.Platforms) {
				t.Fatalf("%s/%s: choices/funcs not aligned with platforms", spec.AppName, name)
			}
			for ci, plat := range node.Platforms {
				c := pn.choices[ci]
				if c.Key != plat.Name || c.CostNS != plat.CostNS || c.TypeID != cfg.TypeIndex(plat.Name) {
					t.Fatalf("%s/%s: choice %d = %+v does not match platform %+v",
						spec.AppName, name, ci, c, plat)
				}
				so := plat.SharedObject
				if so == "" {
					so = spec.SharedObject
				}
				want, err := reg.Lookup(so, plat.RunFunc)
				if err != nil {
					t.Fatal(err)
				}
				if reflect.ValueOf(pn.funcs[ci]).Pointer() != reflect.ValueOf(want).Pointer() {
					t.Fatalf("%s/%s: platform %s bound to wrong kernel", spec.AppName, name, plat.Name)
				}
			}
			if pn.dataBytes != spec.DataBytes(name) {
				t.Fatalf("%s/%s: dataBytes %d want %d", spec.AppName, name, pn.dataBytes, spec.DataBytes(name))
			}
			// choiceByType agrees with PlatformFor's first-match scan.
			for ti, key := range cfg.TypeKeys() {
				wantPlat, ok := node.PlatformFor(key)
				ci := pn.choiceByType[ti]
				if ok != (ci >= 0) {
					t.Fatalf("%s/%s: choiceByType[%s] support mismatch", spec.AppName, name, key)
				}
				if ok && pn.choices[ci].Key != wantPlat.Name {
					t.Fatalf("%s/%s: choiceByType[%s] picked %q want %q",
						spec.AppName, name, key, pn.choices[ci].Key, wantPlat.Name)
				}
			}
		}
		// Heads ascend and are exactly the predecessor-free nodes.
		wantHeads := spec.Heads()
		if len(p.heads) != len(wantHeads) {
			t.Fatalf("%s: %d heads want %d", spec.AppName, len(p.heads), len(wantHeads))
		}
		for i, hid := range p.heads {
			if p.nodes[hid].name != wantHeads[i] {
				t.Fatalf("%s: head %d is %q want %q", spec.AppName, i, p.nodes[hid].name, wantHeads[i])
			}
		}
	}
	if p := mustCompileErr(t, cfg, reg); p == "" {
		t.Fatal("compile of spec with unknown symbol succeeded")
	}
}

// mustCompileErr compiles a spec with an unknown runfunc and returns
// the error text.
func mustCompileErr(t *testing.T, cfg *platform.Config, reg *kernels.Registry) string {
	t.Helper()
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	n := spec.DAG["MAX"]
	n.Platforms = []appmodel.PlatformSpec{{Name: "cpu", RunFunc: "ghost_func", CostNS: 10}}
	spec.DAG["MAX"] = n
	_, err := Compile(spec, cfg, reg)
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestProgramCacheSharing pins the compile-once behaviour: every
// emulator over the same (spec, config, registry) triple reuses one
// template, while a changed spec compiles fresh.
func TestProgramCacheSharing(t *testing.T) {
	cfg := zcu(t, 2, 1)
	reg := apps.Registry()
	spec := apps.WiFiTX(apps.DefaultWiFiParams())
	cache := NewProgramCache()
	p1, err := cache.Get(spec, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cache.Get(spec, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same triple compiled twice")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d templates, want 1", cache.Len())
	}
	// A fresh spec (even with identical content) is a different
	// archetype: templates key on identity.
	if _, err := cache.Get(apps.WiFiTX(apps.DefaultWiFiParams()), cfg, reg); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d templates, want 2", cache.Len())
	}
	// Compile errors must not be cached.
	bad := apps.RangeDetection(apps.DefaultRangeParams())
	n := bad.DAG["MAX"]
	n.Platforms = []appmodel.PlatformSpec{{Name: "cpu", RunFunc: "ghost_func", CostNS: 10}}
	bad.DAG["MAX"] = n
	if _, err := cache.Get(bad, cfg, reg); err == nil {
		t.Fatal("bad spec compiled")
	}
	if cache.Len() != 2 {
		t.Fatalf("error was cached: %d entries", cache.Len())
	}
}
