package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// steadyWorkload builds a mixed trace of the three small applications
// (~50 instances, ~370 tasks) with staggered arrivals.
func steadyWorkload(t *testing.T) []Arrival {
	t.Helper()
	rd := apps.RangeDetection(apps.DefaultRangeParams())
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	wrx := apps.WiFiRX(apps.DefaultWiFiParams())
	var out []Arrival
	at := vtime.Time(0)
	for i := 0; i < 17; i++ {
		out = append(out,
			Arrival{Spec: rd, At: at},
			Arrival{Spec: wtx, At: at + 7_000},
			Arrival{Spec: wrx, At: at + 13_000},
		)
		at += 60_000
	}
	return out
}

// TestRunSteadyStateAllocs pins the hot path's allocation behaviour:
// once the scratch and template cache are warm, a timing-only Run may
// allocate only the escaping report (a handful of slice headers plus
// the record arrays) — nothing proportional to tasks x PEs, and no
// per-task maps or lookup structures. The bound is deliberately a
// small constant: the pre-compilation emulator spent ~12 allocations
// per task (95k for this workload scaled up), so any reintroduced
// per-task allocation trips this immediately.
func TestRunSteadyStateAllocs(t *testing.T) {
	trace := steadyWorkload(t)
	e, err := New(Options{
		Config:        zcu(t, 3, 2),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		Seed:          1,
		SkipExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks int
	// Warm the scratch slabs, template cache and pooled buffers.
	for i := 0; i < 2; i++ {
		rep, err := e.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		tasks = len(rep.Tasks)
	}
	if tasks != 17*(6+7+9) {
		t.Fatalf("workload executed %d tasks", tasks)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(trace); err != nil {
			t.Fatal(err)
		}
	})
	// Escaping report: the Report struct, its Tasks/Apps/PEs arrays
	// (with append growth for Apps/PEs), plus pool slack. 64 is ~4x
	// the measured steady state — tight enough that any O(tasks) term
	// (374 tasks here) blows through it.
	if avg > 64 {
		t.Fatalf("steady-state Run allocates %.0f objects for %d tasks; hot path has regressed", avg, tasks)
	}
}

// TestRunSteadyStateAllocsOnlineSink is the sink-path companion of
// TestRunSteadyStateAllocs: with a streaming Online sink no record
// ever escapes, so a warm batch Run must allocate even less — just the
// report header and PE stats. Any per-record allocation in the sink
// routing trips this.
func TestRunSteadyStateAllocsOnlineSink(t *testing.T) {
	trace := steadyWorkload(t)
	sink := stats.NewOnline(0)
	e, err := New(Options{
		Config:        zcu(t, 3, 2),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		Seed:          1,
		SkipExecution: true,
		Sink:          sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Run(trace); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Wait.Count() != 2*17*(6+7+9) {
		t.Fatalf("sink saw %d tasks", sink.Wait.Count())
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(trace); err != nil {
			t.Fatal(err)
		}
	})
	// The report struct + its PE array, and nothing per record. 16 is
	// ~4x the measured steady state.
	if avg > 16 {
		t.Fatalf("steady-state Run with Online sink allocates %.0f objects; sink path regressed", avg)
	}
}

// TestScheduleSteadyStateAllocs1024PE pins the indexed scheduler's
// allocation behaviour at the synthetic testbed's extreme: 1024 PEs
// (960 cores + 64 accelerators). Once the view's bitmap scratch and
// the pooled buffers are warm, schedule() must not allocate per
// invocation under any built-in policy family — the run's allocations
// stay a small constant (report header + per-PE stats growth), with
// no term proportional to invocations, ready length or PE count. The
// run drives a few hundred invocations, so a single per-invocation
// allocation blows the bound by an order of magnitude.
func TestScheduleSteadyStateAllocs1024PE(t *testing.T) {
	cfg, err := platform.Synthetic(960, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.PEs); got != 1024 {
		t.Fatalf("synthetic config has %d PEs, want 1024", got)
	}
	// A dense drip of arrivals: every injection and every completion
	// batch is a separate scheduler invocation, so the run exercises
	// schedule() hundreds of times even though the huge pool never
	// saturates.
	rd := apps.RangeDetection(apps.DefaultRangeParams())
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	wrx := apps.WiFiRX(apps.DefaultWiFiParams())
	// Spacing matters: monitoring 1024 handlers charges ~340us of
	// overlay time per collected completion (the Figure 11 effect at
	// its extreme), so arrivals closer than a few milliseconds clump
	// into one overhead window and share an invocation.
	var trace []Arrival
	at := vtime.Time(0)
	for i := 0; i < 100; i++ {
		trace = append(trace,
			Arrival{Spec: rd, At: at},
			Arrival{Spec: wtx, At: at + 3_400_000},
			Arrival{Spec: wrx, At: at + 6_700_000},
		)
		at += 10_200_000
	}
	for _, policyName := range []string{"frfs", "met", "eft", "random", "frfs-rq", "eft-rq"} {
		policy, err := sched.New(policyName, 3)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Options{
			Config:        cfg,
			Policy:        policy,
			Registry:      apps.Registry(),
			Seed:          1,
			SkipExecution: true,
			Sink:          stats.Discard{},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := e.Run(trace); err != nil {
				t.Fatal(err)
			}
		}
		var invocations int
		avg := testing.AllocsPerRun(5, func() {
			rep, err := e.Run(trace)
			if err != nil {
				t.Fatal(err)
			}
			invocations = rep.Sched.Invocations
		})
		// Report struct + the PEs slice growing to 1024 entries (~12
		// appends) + pool slack; ~4x the measured steady state and far
		// below one allocation per invocation.
		if avg > 64 {
			t.Fatalf("%s: steady-state 1024-PE Run allocates %.0f objects over %d schedule() invocations; the indexed scheduler hot path has regressed",
				policyName, avg, invocations)
		}
		if invocations < 100 {
			t.Fatalf("%s: workload drove only %d invocations; the regression gate needs a busier trace", policyName, invocations)
		}
	}
}

// TestManyPEConfigDeterministic exercises the next-event tracker and
// the scheduler hot path on a synthetic 64-PE configuration — far past
// any COTS board — and checks full determinism across repeated runs.
func TestManyPEConfigDeterministic(t *testing.T) {
	cfg, err := platform.Synthetic(48, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := steadyWorkload(t)
	for _, policyName := range []string{"frfs", "eft", "frfs-rq", "random"} {
		policy, err := sched.New(policyName, 2)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Options{
			Config:        cfg,
			Policy:        policy,
			Registry:      apps.Registry(),
			Seed:          3,
			JitterSigma:   0.03,
			SkipExecution: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := e.Run(trace)
		if err != nil {
			t.Fatalf("%s: %v", policyName, err)
		}
		r2, err := e.Run(trace)
		if err != nil {
			t.Fatalf("%s: %v", policyName, err)
		}
		if len(r1.Tasks) != len(trace)/3*(6+7+9) {
			t.Fatalf("%s: %d tasks", policyName, len(r1.Tasks))
		}
		compareReports(t, r1, r2)
		// The tracker must have collected every dispatched task: each
		// (instance, node) pair appears exactly once.
		seen := map[[2]string]map[int]bool{}
		for _, r := range r1.Tasks {
			k := [2]string{r.App, r.Node}
			if seen[k] == nil {
				seen[k] = map[int]bool{}
			}
			if seen[k][r.Instance] {
				t.Fatalf("%s: task %s#%d/%s completed twice", policyName, r.App, r.Instance, r.Node)
			}
			seen[k][r.Instance] = true
		}
	}
}
