package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// randomDAGSpec generates a random layered DAG application whose
// kernels increment a shared counter; emulating it must execute every
// node exactly once regardless of schedule.
func randomDAGSpec(rng *rand.Rand, reg *kernels.Registry, idx int) *appmodel.AppSpec {
	layers := rng.Intn(4) + 1
	spec := &appmodel.AppSpec{
		AppName:      fmt.Sprintf("fuzz_%d", idx),
		SharedObject: fmt.Sprintf("fuzz_%d.so", idx),
		Variables: map[string]appmodel.VariableSpec{
			"counter": {Bytes: 8},
		},
		DAG: map[string]appmodel.NodeSpec{},
	}
	_ = reg.Register(spec.SharedObject, "bump", func(ctx *kernels.Context) error {
		v, err := ctx.Arg(0)
		if err != nil {
			return err
		}
		v.SetInt64(v.Int64() + 1)
		return nil
	})

	var prevLayer []string
	node := 0
	for l := 0; l < layers; l++ {
		width := rng.Intn(3) + 1
		var layer []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("n%d", node)
			node++
			ns := appmodel.NodeSpec{
				Arguments: []string{"counter"},
				Platforms: []appmodel.PlatformSpec{{
					Name: "cpu", RunFunc: "bump",
					CostNS: int64(rng.Intn(20_000) + 1000),
				}},
			}
			// Random subset of the previous layer as predecessors.
			for _, p := range prevLayer {
				if rng.Intn(2) == 0 {
					ns.Predecessors = append(ns.Predecessors, p)
				}
			}
			if len(ns.Predecessors) == 0 && l > 0 {
				ns.Predecessors = []string{prevLayer[0]}
			}
			spec.DAG[name] = ns
			layer = append(layer, name)
		}
		prevLayer = layer
	}
	spec.Normalize()
	return spec
}

// TestRandomDAGsAllPolicies emulates batches of random DAG apps under
// every policy and checks the core invariants: every task runs exactly
// once, precedence holds in virtual time, no PE overlaps two tasks,
// and the counter proves functional execution.
func TestRandomDAGsAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg, err := platform.ZCU102(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		reg := kernels.NewRegistry()
		var arrivals []Arrival
		total := 0
		nApps := rng.Intn(3) + 1
		var specs []*appmodel.AppSpec
		for a := 0; a < nApps; a++ {
			spec := randomDAGSpec(rng, reg, a)
			if err := spec.Validate(); err != nil {
				t.Fatalf("trial %d: generated spec invalid: %v", trial, err)
			}
			specs = append(specs, spec)
			total += spec.TaskCount()
			arrivals = append(arrivals, Arrival{Spec: spec, At: vtime.Time(rng.Intn(1000))})
		}
		for _, polName := range sched.Names() {
			pol, _ := sched.New(polName, int64(trial))
			e, err := New(Options{Config: cfg, Policy: pol, Registry: reg, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			report, err := e.Run(arrivals)
			if err != nil {
				t.Fatalf("trial %d policy %s: %v", trial, polName, err)
			}
			if len(report.Tasks) != total {
				t.Fatalf("trial %d policy %s: executed %d of %d tasks", trial, polName, len(report.Tasks), total)
			}
			// Each task exactly once.
			seen := map[string]bool{}
			for _, r := range report.Tasks {
				key := fmt.Sprintf("%s#%d/%s", r.App, r.Instance, r.Node)
				if seen[key] {
					t.Fatalf("trial %d policy %s: task %s ran twice", trial, polName, key)
				}
				seen[key] = true
			}
			// Precedence: per instance, node start >= every pred's end.
			end := map[string]vtime.Time{}
			start := map[string]vtime.Time{}
			for _, r := range report.Tasks {
				key := fmt.Sprintf("%d/%s", r.Instance, r.Node)
				end[key] = r.End
				start[key] = r.Start
			}
			for _, inst := range e.Instances() {
				//repolint:allow detorder assertion-only scan; any precedence violation fails the trial whichever node is visited first
				for name, node := range inst.Spec.DAG {
					for _, pred := range node.Predecessors {
						sKey := fmt.Sprintf("%d/%s", inst.Index, name)
						pKey := fmt.Sprintf("%d/%s", inst.Index, pred)
						if start[sKey] < end[pKey] {
							t.Fatalf("trial %d policy %s: %s started before pred %s finished", trial, polName, sKey, pKey)
						}
					}
				}
			}
			// No PE executes two tasks at once.
			byPE := map[int][][2]vtime.Time{}
			for _, r := range report.Tasks {
				byPE[r.PEID] = append(byPE[r.PEID], [2]vtime.Time{r.Start, r.End})
			}
			//repolint:allow detorder assertion-only scan; any span overlap fails the trial whichever PE is visited first
			for pe, spans := range byPE {
				for i := range spans {
					for j := i + 1; j < len(spans); j++ {
						a, bSpan := spans[i], spans[j]
						if a[0] < bSpan[1] && bSpan[0] < a[1] {
							t.Fatalf("trial %d policy %s: PE %d overlap %v and %v", trial, polName, pe, a, bSpan)
						}
					}
				}
			}
			// Functional execution: counters equal task counts.
			for _, inst := range e.Instances() {
				got := inst.Mem.MustLookup("counter").Int64()
				if int(got) != inst.Spec.TaskCount() {
					t.Fatalf("trial %d policy %s: %s counter %d != %d tasks",
						trial, polName, inst.Spec.AppName, got, inst.Spec.TaskCount())
				}
			}
		}
	}
}

// TestKernelErrorPropagates: a failing kernel aborts the emulation
// with a descriptive error.
func TestKernelErrorPropagates(t *testing.T) {
	reg := kernels.NewRegistry()
	_ = reg.Register("bad.so", "boom", func(ctx *kernels.Context) error {
		return fmt.Errorf("injected kernel failure")
	})
	spec := &appmodel.AppSpec{
		AppName:      "bad",
		SharedObject: "bad.so",
		Variables:    map[string]appmodel.VariableSpec{"x": {Bytes: 4}},
		DAG: map[string]appmodel.NodeSpec{
			"n": {Arguments: []string{"x"},
				Platforms: []appmodel.PlatformSpec{{Name: "cpu", RunFunc: "boom", CostNS: 10}}},
		},
	}
	cfg, _ := platform.ZCU102(1, 0)
	e, err := New(Options{Config: cfg, Policy: sched.FRFS{}, Registry: reg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run([]Arrival{{Spec: spec, At: 0}})
	if err == nil {
		t.Fatal("kernel failure swallowed")
	}
}

// TestReservationQueueWithAccel runs the queue policy on a
// heterogeneous config with real applications: queued dispatch must
// not break precedence or functional output.
func TestReservationQueueWithAccel(t *testing.T) {
	p := apps.DefaultRangeParams()
	arrivals := []Arrival{
		{Spec: apps.RangeDetection(p), At: 0},
		{Spec: apps.RangeDetection(p), At: 0},
		{Spec: apps.RangeDetection(p), At: 0},
	}
	cfg, _ := platform.ZCU102(1, 2)
	e, err := New(Options{Config: cfg, Policy: sched.FRFSQ{Depth: 3}, Registry: apps.Registry(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	report, err := e.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tasks) != 18 {
		t.Fatalf("ran %d tasks, want 18", len(report.Tasks))
	}
	for _, inst := range e.Instances() {
		if err := apps.CheckRangeDetection(inst.Mem, p); err != nil {
			t.Fatalf("instance %d: %v", inst.Index, err)
		}
	}
}
