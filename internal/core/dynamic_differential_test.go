package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// The dynamic-platform half of the byte-determinism contract:
//
//  1. A dynamic emulator whose event schedule is empty (or whose events
//     all trail the workload) produces a report byte-identical to a
//     static emulator's — the event machinery must be invisible until
//     an event actually fires.
//  2. Under any event schedule — faults, restores, DVFS steps, power
//     caps, full blackouts, seeded churn — every built-in policy's
//     indexed fast path stays op- and assignment-identical to the
//     forced slice path, over both batch Run and RunStream.

// dynamicConfigs are the three platforms the churn experiment ranks:
// the uniform synthetic pool, the Odroid whose big.LITTLE split makes
// one type two cost classes, and the heterogeneous synthetic pool with
// three classes and accelerators.
func dynamicConfigs(t *testing.T) []namedConfig {
	t.Helper()
	syn, err := platform.Synthetic(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	od, err := platform.OdroidXU3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	het, err := platform.SyntheticHet(8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []namedConfig{{"synthetic", syn}, {"odroid", od}, {"het", het}}
}

// dynamicWorkload is a lighter sibling of differentialWorkload: the
// dynamic differential multiplies schedules into the matrix, so the
// trace stays at 16 bursts (~500 tasks) spanning ~176us of arrivals —
// long enough that every hand-authored event below lands mid-run.
func dynamicWorkload(t *testing.T) []Arrival {
	t.Helper()
	rd := apps.RangeDetection(apps.DefaultRangeParams())
	pd := apps.PulseDoppler(apps.DefaultDopplerParams())
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	wrx := apps.WiFiRX(apps.DefaultWiFiParams())
	var out []Arrival
	at := vtime.Time(0)
	for i := 0; i < 16; i++ {
		out = append(out,
			Arrival{Spec: rd, At: at},
			Arrival{Spec: pd, At: at + 2_000},
			Arrival{Spec: wtx, At: at + 3_500},
			Arrival{Spec: wrx, At: at + 5_000},
		)
		at += 11_000
	}
	return out
}

// namedSchedule keeps the event regimes in declaration order, like
// namedConfig (deterministic subtest order; no map iteration).
type namedSchedule struct {
	name string
	ev   *platevent.Schedule
}

// dynamicSchedules builds the event regimes the differential pins, per
// configuration (PE indices and restored speeds depend on the layout).
func dynamicSchedules(cfg *platform.Config) []namedSchedule {
	n := len(cfg.PEs)
	us := func(x int64) vtime.Time { return vtime.Time(x * 1000) }
	var out []namedSchedule
	add := func(name string, ev *platevent.Schedule) { out = append(out, namedSchedule{name, ev}) }

	// Rolling faults with staggered restores, ending with the last PE
	// (an accelerator where the config has one) out and back.
	add("faults", platevent.New().
		FaultAt(us(25), 0).
		FaultAt(us(50), 1).
		RestoreAt(us(90), 0).
		FaultAt(us(110), n-1).
		RestoreAt(us(140), 1).
		RestoreAt(us(155), n-1))

	// DVFS steps on two PEs, returning to the calibrated factors — the
	// return migrates the PEs back into configuration classes.
	add("dvfs", platevent.New().
		SetSpeedAt(us(20), 0, 0.7).
		SetSpeedAt(us(60), n/2, 1.4).
		SetSpeedAt(us(100), 0, 1.15).
		SetSpeedAt(us(130), n/2, cfg.PEs[n/2].Type.SpeedFactor).
		SetSpeedAt(us(150), 0, cfg.PEs[0].Type.SpeedFactor))

	// Tightening power caps, lifted before the tail. 1.0W masks the
	// 1.6W big cores; 0.5W leaves only LITTLEs and accelerators.
	add("powercap", platevent.New().
		PowerCapAt(us(30), 1.0).
		PowerCapAt(us(80), 0.5).
		PowerCapAt(us(140), 0))

	// Everything at once, including same-instant pairs whose insertion
	// order is the contract (fault then restore of one PE at one T) and
	// idempotent no-ops (double fault, restore of a healthy PE).
	add("mixed", platevent.New().
		SetSpeedAt(us(15), 1, 1.3).
		FaultAt(us(40), 2%n).
		FaultAt(us(40), 2%n).
		PowerCapAt(us(55), 1.0).
		FaultAt(us(70), 0).
		RestoreAt(us(70), 0).
		RestoreAt(us(85), 2%n).
		RestoreAt(us(85), 3%n).
		SetSpeedAt(us(95), 1, cfg.PEs[1].Type.SpeedFactor).
		PowerCapAt(us(120), 0))

	// Total blackout and recovery: every PE faults at one instant (all
	// in-flight and reserved work requeues), the platform sits dark
	// with a growing ready list, then every PE returns.
	blackout := platevent.New()
	for pe := 0; pe < n; pe++ {
		blackout.FaultAt(us(65), pe)
	}
	for pe := 0; pe < n; pe++ {
		blackout.RestoreAt(us(115), pe)
	}
	add("blackout", blackout)

	// Seeded churn: the generator the experiment uses, faults capped so
	// at least one PE stays up at all times.
	add("churn", platevent.Churn(int64(n)*101+7, platevent.ChurnConfig{
		NumPEs:    n,
		Horizon:   vtime.Duration(160 * 1000),
		Events:    40,
		Speeds:    []float64{0.7, 1.4},
		PowerCaps: []float64{0, 0.5, 1.0},
	}))
	return out
}

// runDynamic is runDifferential plus an event schedule.
func runDynamic(t *testing.T, cfg *platform.Config, policy sched.Policy, trace []Arrival, ev *platevent.Schedule) *stats.Report {
	t.Helper()
	e, err := New(Options{
		Config:        cfg,
		Policy:        policy,
		Registry:      apps.Registry(),
		Seed:          42,
		JitterSigma:   0.03,
		SkipExecution: true,
		Events:        ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(trace)
	if err != nil {
		t.Fatalf("%s/%s: %v", cfg.Name, policy.Name(), err)
	}
	return rep
}

// TestZeroEventDynamicMatchesStatic pins deliverable (a): an emulator
// carrying an empty schedule — or one whose only event trails the
// entire workload and therefore never applies — produces a report
// byte-identical (JSON bytes included) to a static emulator's.
func TestZeroEventDynamicMatchesStatic(t *testing.T) {
	trace := dynamicWorkload(t)
	for _, nc := range dynamicConfigs(t) {
		cname, cfg := nc.name, nc.cfg
		for _, policyName := range sched.Names() {
			t.Run(cname+"/"+policyName, func(t *testing.T) {
				mk := func() sched.Policy {
					p, err := sched.New(policyName, 5)
					if err != nil {
						t.Fatal(err)
					}
					return p
				}
				static := runDifferential(t, cfg, mk(), trace)
				empty := runDynamic(t, cfg, mk(), trace, platevent.New())
				trailing := runDynamic(t, cfg, mk(), trace, platevent.New().FaultAt(vtime.Time(3_600_000_000_000), 0))
				for _, dyn := range []*stats.Report{empty, trailing} {
					compareReports(t, static, dyn)
					if dyn.PlatEvents != 0 || dyn.Requeues != 0 {
						t.Fatalf("zero-event run reports %d events / %d requeues", dyn.PlatEvents, dyn.Requeues)
					}
				}
				wantJSON, err := json.Marshal(static)
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(empty)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Fatalf("zero-event dynamic JSON diverged from static")
				}
			})
		}
	}
}

// TestIndexedMatchesSlicePathUnderEvents pins deliverable (b): every
// built-in policy stays op- and assignment-identical between the
// indexed and forced-slice paths under every dynamic regime, on all
// three churn configurations, through batch Run.
func TestIndexedMatchesSlicePathUnderEvents(t *testing.T) {
	trace := dynamicWorkload(t)
	for _, nc := range dynamicConfigs(t) {
		cname, cfg := nc.name, nc.cfg
		for _, ns := range dynamicSchedules(cfg) {
			sname, ev := ns.name, ns.ev
			for _, policyName := range sched.Names() {
				t.Run(cname+"/"+sname+"/"+policyName, func(t *testing.T) {
					indexed, err := sched.New(policyName, 5)
					if err != nil {
						t.Fatal(err)
					}
					slice, err := sched.New(policyName, 5)
					if err != nil {
						t.Fatal(err)
					}
					got := runDynamic(t, cfg, indexed, trace, ev)
					want := runDynamic(t, cfg, sched.SliceOnly(slice), trace, ev)
					compareReports(t, want, got)
					if sname != "powercap" && got.PlatEvents == 0 {
						t.Fatalf("schedule %s applied no events — the regime tested nothing", sname)
					}
				})
			}
		}
	}
}

// TestIndexedMatchesSlicePathUnderEventsStream repeats the dynamic
// differential through RunStream: instance recycling plus fault
// requeues is exactly where a stale slab pointer would surface.
func TestIndexedMatchesSlicePathUnderEventsStream(t *testing.T) {
	trace := dynamicWorkload(t)
	for _, nc := range dynamicConfigs(t) {
		cname, cfg := nc.name, nc.cfg
		for _, ns := range dynamicSchedules(cfg) {
			sname, ev := ns.name, ns.ev
			for _, policyName := range sched.Names() {
				t.Run(cname+"/"+sname+"/"+policyName, func(t *testing.T) {
					run := func(p sched.Policy) *stats.Report {
						e, err := New(Options{
							Config: cfg, Policy: p, Registry: apps.Registry(),
							Seed: 9, SkipExecution: true, Events: ev,
						})
						if err != nil {
							t.Fatal(err)
						}
						rep, err := e.RunStream(&sliceSource{arr: trace})
						if err != nil {
							t.Fatalf("%s/%s: %v", cfg.Name, p.Name(), err)
						}
						return rep
					}
					indexed, _ := sched.New(policyName, 3)
					slice, _ := sched.New(policyName, 3)
					got := run(indexed)
					want := run(sched.SliceOnly(slice))
					compareReports(t, want, got)
				})
			}
		}
	}
}

// fuzzSpeeds and fuzzCaps are the ladders FuzzEventSchedule draws from:
// a handful of values keeps the interned class count far below the
// 64-class ceiling while still exercising re-interning and caps that
// mask none, some, or all CPU classes.
var (
	fuzzSpeeds = [...]float64{0.5, 0.8, 1.2, 1.9}
	fuzzCaps   = [...]float64{0, 0.3, 0.5, 1.0, 1.7}
)

// scheduleFromBytes decodes a fuzz payload into a valid schedule: six
// bytes per event (kind, PE, 16-bit instant, speed index, cap index),
// capped at 64 events to bound the emulation count per input.
func scheduleFromBytes(data []byte, numPEs int) *platevent.Schedule {
	s := platevent.New()
	for i := 0; i+6 <= len(data) && s.Len() < 64; i += 6 {
		b := data[i : i+6]
		at := vtime.Time(int64(binary.LittleEndian.Uint16(b[2:4])) * 40)
		pe := int(b[1]) % numPEs
		switch b[0] % 4 {
		case 0:
			s.FaultAt(at, pe)
		case 1:
			s.RestoreAt(at, pe)
		case 2:
			s.SetSpeedAt(at, pe, fuzzSpeeds[int(b[4])%len(fuzzSpeeds)])
		case 3:
			s.PowerCapAt(at, fuzzCaps[int(b[5])%len(fuzzCaps)])
		}
	}
	return s
}

// FuzzEventSchedule drives both scheduling paths under arbitrary event
// schedules — including platform blackouts with no recovery, which
// must surface as the deterministic stranded-tasks error, never a
// panic or a hang — and requires the two paths to agree byte-for-byte
// on the outcome, error or report.
func FuzzEventSchedule(f *testing.F) {
	cfg, err := platform.SyntheticHet(3, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	rd := apps.RangeDetection(apps.DefaultRangeParams())
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	pd := apps.PulseDoppler(apps.DefaultDopplerParams())
	trace := []Arrival{
		{Spec: rd, At: 0},
		{Spec: wtx, At: 2_000},
		{Spec: pd, At: 5_000},
		{Spec: rd, At: 40_000},
		{Spec: wtx, At: 70_000},
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0x10, 0, 0, 0, 1, 0, 0x40, 0, 0, 0})                      // fault PE0, restore PE0
	f.Add([]byte{0, 0, 0x10, 0, 0, 0, 0, 1, 0x11, 0, 0, 0, 0, 2, 0x12, 0, 0, 0}) // creeping blackout
	f.Add([]byte{2, 1, 0x20, 0, 1, 0, 3, 0, 0x30, 0, 0, 2, 3, 0, 0x60, 0, 0, 0}) // dvfs + caps
	f.Fuzz(func(t *testing.T, data []byte) {
		ev := scheduleFromBytes(data, len(cfg.PEs))
		if err := ev.Validate(len(cfg.PEs)); err != nil {
			t.Fatalf("generated schedule invalid: %v", err)
		}
		run := func(p sched.Policy) (*stats.Report, error) {
			e, err := New(Options{
				Config: cfg, Policy: p, Registry: apps.Registry(),
				Seed: 11, SkipExecution: true, Events: ev,
			})
			if err != nil {
				t.Fatal(err)
			}
			return e.Run(trace)
		}
		for _, policyName := range sched.Names() {
			indexed, err := sched.New(policyName, 7)
			if err != nil {
				t.Fatal(err)
			}
			slice, err := sched.New(policyName, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := run(indexed)
			want, wantErr := run(sched.SliceOnly(slice))
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%s: paths disagree on failure: indexed=%v slice=%v", policyName, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("%s: error text diverged:\nindexed: %v\nslice:   %v", policyName, gotErr, wantErr)
				}
				continue
			}
			compareReports(t, want, got)
		}
	})
}
