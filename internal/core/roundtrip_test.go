package core

import (
	"reflect"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/kernels"
	"repro/internal/minic/minicgen"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestJSONRoundTripEmulationEquality: serialising an application to
// its JSON DAG form and reloading it must produce a bit-identical
// emulation — same makespan, same task placement, same numeric output.
// This is the contract that makes the JSON files the framework's
// source of truth.
func TestJSONRoundTripEmulationEquality(t *testing.T) {
	params := apps.DefaultWiFiParams()
	for _, build := range []func() *appmodel.AppSpec{
		func() *appmodel.AppSpec { return apps.RangeDetection(apps.DefaultRangeParams()) },
		func() *appmodel.AppSpec { return apps.WiFiTX(params) },
		func() *appmodel.AppSpec { return apps.WiFiRX(params) },
	} {
		orig := build()
		data, err := orig.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		reloaded, err := appmodel.ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: reload: %v", orig.AppName, err)
		}

		runSpec := func(spec *appmodel.AppSpec) (*Emulator, int64) {
			e, err := New(Options{
				Config:   zcu(t, 2, 1),
				Policy:   sched.FRFS{},
				Registry: apps.Registry(),
				Seed:     9,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run([]Arrival{{Spec: spec, At: 0}})
			if err != nil {
				t.Fatalf("%s: %v", spec.AppName, err)
			}
			return e, int64(rep.Makespan)
		}
		e1, m1 := runSpec(orig)
		e2, m2 := runSpec(reloaded)
		if m1 != m2 {
			t.Fatalf("%s: makespan changed across JSON round trip: %d vs %d", orig.AppName, m1, m2)
		}
		// Output variables are byte-identical.
		//repolint:allow detorder assertion-only scan; every variable is compared regardless of visit order
		for name := range orig.Variables {
			v1 := e1.Instances()[0].Mem.MustLookup(name)
			v2 := e2.Instances()[0].Mem.MustLookup(name)
			b1, b2 := v1.Bytes(), v2.Bytes()
			if len(b1) != len(b2) {
				t.Fatalf("%s/%s: heap sizes differ", orig.AppName, name)
			}
			for i := range b1 {
				if b1[i] != b2[i] {
					t.Fatalf("%s/%s: output differs at byte %d after JSON round trip", orig.AppName, name, i)
				}
			}
			for i := range v1.Raw {
				if v1.Raw[i] != v2.Raw[i] {
					t.Fatalf("%s/%s: scalar differs after JSON round trip", orig.AppName, name)
				}
			}
		}
	}
}

// compileOpIdentical compiles both specs and asserts the lowered
// Programs are operationally identical: every field dispatch or the
// indexed scheduler reads must match, node for node. Kernel function
// pointers are covered by count (both sides resolve through the same
// registry, so symbol identity follows from the spec comparison).
func compileOpIdentical(t *testing.T, orig, reloaded *appmodel.AppSpec, cfg *platform.Config, reg *kernels.Registry) {
	t.Helper()
	a, err := Compile(orig, cfg, reg)
	if err != nil {
		t.Fatalf("compile original: %v", err)
	}
	b, err := Compile(reloaded, cfg, reg)
	if err != nil {
		t.Fatalf("compile reloaded: %v", err)
	}
	if a.TaskCount() != b.TaskCount() {
		t.Fatalf("task count diverged: %d vs %d", a.TaskCount(), b.TaskCount())
	}
	if !reflect.DeepEqual(a.heads, b.heads) {
		t.Fatalf("heads diverged: %v vs %v", a.heads, b.heads)
	}
	for i := range a.nodes {
		na, nb := &a.nodes[i], &b.nodes[i]
		if na.name != nb.name {
			t.Fatalf("node %d name diverged: %q vs %q", i, na.name, nb.name)
		}
		if !reflect.DeepEqual(na.spec, nb.spec) {
			t.Fatalf("node %s spec diverged:\n%+v\n%+v", na.name, na.spec, nb.spec)
		}
		if na.preds != nb.preds || !reflect.DeepEqual(na.succs, nb.succs) {
			t.Fatalf("node %s wiring diverged: preds %d/%d succs %v/%v",
				na.name, na.preds, nb.preds, na.succs, nb.succs)
		}
		if !reflect.DeepEqual(na.choices, nb.choices) {
			t.Fatalf("node %s choices diverged:\n%+v\n%+v", na.name, na.choices, nb.choices)
		}
		if !reflect.DeepEqual(na.choiceByType, nb.choiceByType) {
			t.Fatalf("node %s choiceByType diverged: %v vs %v", na.name, na.choiceByType, nb.choiceByType)
		}
		if !reflect.DeepEqual(na.meta, nb.meta) {
			t.Fatalf("node %s indexed metadata diverged:\n%+v\n%+v", na.name, na.meta, nb.meta)
		}
		if na.dataBytes != nb.dataBytes {
			t.Fatalf("node %s dataBytes diverged: %d vs %d", na.name, na.dataBytes, nb.dataBytes)
		}
		if len(na.funcs) != len(nb.funcs) {
			t.Fatalf("node %s resolved %d funcs vs %d", na.name, len(na.funcs), len(nb.funcs))
		}
	}
}

// TestSpecJSONRoundTripCompilesIdentically is the cmd/appexport
// satellite at the Program level: export a spec to its on-disk JSON
// form, parse it back, and require the reloaded spec to compile to an
// op-identical Program — stronger than emulation equality because it
// pins the compiled metadata the indexed scheduler reads, not just
// the observable schedule. Covers every built-in application (the
// appexport surface) plus a converted generated DAG (the cmd/autodag
// surface, with pointer variables carrying initial byte images).
func TestSpecJSONRoundTripCompilesIdentically(t *testing.T) {
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	//repolint:allow detorder assertion-only scan; every builtin spec round-trips independently of visit order
	for name, spec := range apps.Specs() {
		data, err := spec.MarshalIndentJSON()
		if err != nil {
			t.Fatalf("%s: export: %v", name, err)
		}
		back, err := appmodel.ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		compileOpIdentical(t, spec, back, cfg, apps.Registry())
	}

	// Generated DAG: conversion-produced specs exercise pointer
	// variables with float64 init images and the auto-chain shape.
	reg := kernels.NewRegistry()
	gen := minicgen.Generate(11, minicgen.Config{Regions: 8, Kernels: 3, Helpers: 2})
	spec, _, err := gen.Build(reg)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := platform.Synthetic(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := appmodel.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	compileOpIdentical(t, spec, back, syn, reg)
}
