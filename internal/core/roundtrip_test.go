package core

import (
	"testing"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/sched"
)

// TestJSONRoundTripEmulationEquality: serialising an application to
// its JSON DAG form and reloading it must produce a bit-identical
// emulation — same makespan, same task placement, same numeric output.
// This is the contract that makes the JSON files the framework's
// source of truth.
func TestJSONRoundTripEmulationEquality(t *testing.T) {
	params := apps.DefaultWiFiParams()
	for _, build := range []func() *appmodel.AppSpec{
		func() *appmodel.AppSpec { return apps.RangeDetection(apps.DefaultRangeParams()) },
		func() *appmodel.AppSpec { return apps.WiFiTX(params) },
		func() *appmodel.AppSpec { return apps.WiFiRX(params) },
	} {
		orig := build()
		data, err := orig.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		reloaded, err := appmodel.ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: reload: %v", orig.AppName, err)
		}

		runSpec := func(spec *appmodel.AppSpec) (*Emulator, int64) {
			e, err := New(Options{
				Config:   zcu(t, 2, 1),
				Policy:   sched.FRFS{},
				Registry: apps.Registry(),
				Seed:     9,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run([]Arrival{{Spec: spec, At: 0}})
			if err != nil {
				t.Fatalf("%s: %v", spec.AppName, err)
			}
			return e, int64(rep.Makespan)
		}
		e1, m1 := runSpec(orig)
		e2, m2 := runSpec(reloaded)
		if m1 != m2 {
			t.Fatalf("%s: makespan changed across JSON round trip: %d vs %d", orig.AppName, m1, m2)
		}
		// Output variables are byte-identical.
		for name := range orig.Variables {
			v1 := e1.Instances()[0].Mem.MustLookup(name)
			v2 := e2.Instances()[0].Mem.MustLookup(name)
			b1, b2 := v1.Bytes(), v2.Bytes()
			if len(b1) != len(b2) {
				t.Fatalf("%s/%s: heap sizes differ", orig.AppName, name)
			}
			for i := range b1 {
				if b1[i] != b2[i] {
					t.Fatalf("%s/%s: output differs at byte %d after JSON round trip", orig.AppName, name, i)
				}
			}
			for i := range v1.Raw {
				if v1.Raw[i] != v2.Raw[i] {
					t.Fatalf("%s/%s: scalar differs after JSON round trip", orig.AppName, name)
				}
			}
		}
	}
}
