package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// sliceSource adapts a pre-sorted arrival slice to the ArrivalSource
// interface for differential testing.
type sliceSource struct {
	arr []Arrival
	i   int
}

func (s *sliceSource) Next() (Arrival, bool) {
	if s.i >= len(s.arr) {
		return Arrival{}, false
	}
	a := s.arr[s.i]
	s.i++
	return a, true
}

func zcuStream(t *testing.T, cores, ffts int) *platform.Config {
	t.Helper()
	cfg, err := platform.ZCU102(cores, ffts)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func newStreamEmulator(t *testing.T, opts Options) *Emulator {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunStreamMatchesRun: the streamed path (lazy instantiation +
// instance recycling) must reproduce the batch path byte for byte —
// same task records, same app records, same PE and scheduler counters.
func TestRunStreamMatchesRun(t *testing.T) {
	trace := steadyWorkload(t)
	for _, policyName := range []string{"frfs", "eft", "frfs-rq", "random"} {
		policy1, err := sched.New(policyName, 9)
		if err != nil {
			t.Fatal(err)
		}
		policy2, _ := sched.New(policyName, 9)
		base := Options{
			Config:        zcuStream(t, 3, 2),
			Registry:      apps.Registry(),
			Seed:          5,
			JitterSigma:   0.03,
			SkipExecution: true,
		}
		optA := base
		optA.Policy = policy1
		optB := base
		optB.Policy = policy2
		batch, err := newStreamEmulator(t, optA).Run(trace)
		if err != nil {
			t.Fatalf("%s: batch: %v", policyName, err)
		}
		streamed, err := newStreamEmulator(t, optB).RunStream(&sliceSource{arr: trace})
		if err != nil {
			t.Fatalf("%s: stream: %v", policyName, err)
		}
		compareReports(t, batch, streamed)
	}
}

// TestRunStreamFunctional exercises the streamed per-instance memory
// path: kernels execute for real against lazily allocated instance
// memory.
func TestRunStreamFunctional(t *testing.T) {
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	var trace []Arrival
	for i := 0; i < 4; i++ {
		trace = append(trace, Arrival{Spec: wtx, At: vtime.Time(i) * 50_000})
	}
	e := newStreamEmulator(t, Options{
		Config:   zcuStream(t, 2, 1),
		Policy:   sched.FRFS{},
		Registry: apps.Registry(),
		Seed:     1,
	})
	rep, err := e.RunStream(&sliceSource{arr: trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 4 {
		t.Fatalf("%d apps completed", len(rep.Apps))
	}
	// Streamed instances are recycled, so the inspection window is gone
	// by design — and reading it is a loud misuse, not a silent empty
	// slice (the documented PR 3 trap).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Instances() after RunStream did not panic")
			}
		}()
		e.Instances()
	}()
	// A subsequent batch Run restores the inspection window.
	trace2 := []Arrival{{Spec: wtx, At: 0}}
	if _, err := e.Run(trace2); err != nil {
		t.Fatal(err)
	}
	if got := e.Instances(); len(got) != 1 {
		t.Fatalf("batch Run after a streamed run exposed %d instances, want 1", len(got))
	}
}

// TestRunStreamRejectsUnsortedSource: the time-ordering contract is
// enforced, not assumed.
func TestRunStreamRejectsUnsortedSource(t *testing.T) {
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	e := newStreamEmulator(t, Options{
		Config:        zcuStream(t, 1, 0),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		SkipExecution: true,
	})
	if _, err := e.RunStream(&sliceSource{arr: []Arrival{
		{Spec: wtx, At: 1000},
		{Spec: wtx, At: 500},
	}}); err == nil {
		t.Fatal("out-of-order source accepted")
	}
	if _, err := e.RunStream(nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := e.RunStream(&sliceSource{arr: []Arrival{{Spec: nil, At: 0}}}); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := e.RunStream(&sliceSource{arr: []Arrival{{Spec: wtx, At: -1}}}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

// TestSinkMatchesReport: a FullReport sink observes exactly the
// records the nil-sink report collects, and with any sink configured
// the report's own slices stay empty.
func TestSinkMatchesReport(t *testing.T) {
	trace := steadyWorkload(t)
	base := Options{
		Config:        zcuStream(t, 3, 2),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		Seed:          2,
		SkipExecution: true,
	}
	classic, err := newStreamEmulator(t, base).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	var full stats.FullReport
	withSink := base
	withSink.Sink = &full
	sinkRep, err := newStreamEmulator(t, withSink).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinkRep.Tasks) != 0 || len(sinkRep.Apps) != 0 {
		t.Fatalf("sink run still collected %d/%d records in the report",
			len(sinkRep.Tasks), len(sinkRep.Apps))
	}
	if len(full.Tasks) != len(classic.Tasks) {
		t.Fatalf("sink saw %d tasks, report path %d", len(full.Tasks), len(classic.Tasks))
	}
	for i := range full.Tasks {
		if full.Tasks[i] != classic.Tasks[i] {
			t.Fatalf("task record %d diverged:\nsink   %+v\nreport %+v", i, full.Tasks[i], classic.Tasks[i])
		}
	}
	if len(full.Apps) != len(classic.Apps) {
		t.Fatalf("sink saw %d apps, report path %d", len(full.Apps), len(classic.Apps))
	}
	for i := range full.Apps {
		if full.Apps[i] != classic.Apps[i] {
			t.Fatalf("app record %d diverged:\nsink   %+v\nreport %+v", i, full.Apps[i], classic.Apps[i])
		}
	}
	// Aggregate report fields are identical either way.
	if classic.Makespan != sinkRep.Makespan || classic.Sched != sinkRep.Sched {
		t.Fatal("aggregate report fields diverged between sink and report paths")
	}
}

// TestOnlineSinkMatchesExactQuantiles is the core-level differential
// check: the online percentiles must track the exact (full-log)
// quantiles of the same run within P² tolerance.
func TestOnlineSinkMatchesExactQuantiles(t *testing.T) {
	trace := steadyWorkload(t)
	base := Options{
		Config:        zcuStream(t, 3, 2),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		Seed:          3,
		SkipExecution: true,
	}
	classic, err := newStreamEmulator(t, base).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	online := stats.NewOnline(0)
	withSink := base
	withSink.Sink = online
	if _, err := newStreamEmulator(t, withSink).Run(trace); err != nil {
		t.Fatal(err)
	}
	if online.Wait.Count() != int64(len(classic.Tasks)) {
		t.Fatalf("online saw %d tasks, full log %d", online.Wait.Count(), len(classic.Tasks))
	}
	var responses []float64
	for _, a := range classic.Apps {
		responses = append(responses, float64(a.ResponseTime()))
	}
	exact := stats.BoxOf(responses)
	got := online.Response.Quantile(0.50)
	// P² tolerance: within 15% of the span of the exact distribution.
	span := exact.Max - exact.Min
	if diff := got - exact.Median; diff > 0.15*span || diff < -0.15*span {
		t.Fatalf("online p50 response %v vs exact %v (span %v)", got, exact.Median, span)
	}
}

// TestRunStreamSteadyStateAllocs pins the streaming path's allocation
// behaviour with an Online sink: after warm-up, a streamed run
// allocates O(peak in-flight instances), never O(total tasks). This is
// the sink-path companion of TestRunSteadyStateAllocs.
func TestRunStreamSteadyStateAllocs(t *testing.T) {
	trace := steadyWorkload(t)
	e := newStreamEmulator(t, Options{
		Config:        zcuStream(t, 3, 2),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		Seed:          1,
		SkipExecution: true,
		Sink:          stats.NewOnline(0),
	})
	var tasks int64
	for i := 0; i < 2; i++ {
		if _, err := e.RunStream(&sliceSource{arr: trace}); err != nil {
			t.Fatal(err)
		}
	}
	sink := e.opts.Sink.(*stats.Online)
	tasks = sink.Wait.Count()
	if tasks != 2*17*(6+7+9) {
		t.Fatalf("sink saw %d tasks", tasks)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := e.RunStream(&sliceSource{arr: trace}); err != nil {
			t.Fatal(err)
		}
	})
	// Per run: the report struct + PE stats array and the source
	// wrapper; instances come from the cross-run free lists. 32 is ~4x
	// the measured steady state; an O(tasks) term (374 tasks/run)
	// trips it immediately.
	if avg > 32 {
		t.Fatalf("steady-state RunStream allocates %.0f objects for %d tasks; stream path regressed", avg, tasks/2)
	}
}
