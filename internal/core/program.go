package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Program is the compiled template of one application archetype for
// one (configuration, registry) pair: the application handler's
// parse-time work — runfunc symbol resolution, platform-support
// validation, DAG shape analysis — done once and lowered into
// integer-indexed form. Per-arrival instantiation then degenerates to
// filling a contiguous []Task slab: no maps, no string keys, no
// registry lookups, no per-node allocations.
//
// Node IDs are dense indices assigned in sorted-name order, so a
// Program is deterministic for a given AppSpec regardless of map
// iteration order. Head IDs are ascending, matching the sorted order
// of AppSpec.Heads, and each node's successor IDs follow the spec's
// successor list order — both load-bearing for byte-identical replay
// of the pre-compilation emulator.
//
// A Program is immutable after Compile and may be shared freely across
// emulators and sweep workers. The spec, configuration and registry it
// was compiled from must not be mutated afterwards.
type Program struct {
	// Spec is the archetype this template was compiled from.
	Spec *appmodel.AppSpec
	// nodes is indexed by dense node ID.
	nodes []progNode
	// heads lists the entry node IDs (no predecessors), ascending.
	heads []int32
}

// progNode is the compiled form of one DAG node.
type progNode struct {
	name string
	// spec is a copy of the node's parsed form; dispatch reads the
	// platform cost annotations and argument list from it.
	spec appmodel.NodeSpec
	// preds is the predecessor count an instantiated task starts with.
	preds int32
	// succs are the IDs of the nodes unblocked by this one, in spec
	// successor-list order.
	succs []int32
	// choices is the scheduler view of spec.Platforms, index-aligned
	// with it: choices[i].TypeID is the configuration's dense type
	// index of Platforms[i].Name (-1 when the configuration has no
	// such PE).
	choices []sched.PlatformChoice
	// funcs holds the resolved kernel of each platform entry,
	// index-aligned with choices — the paper's parse-time dlsym pass.
	funcs []kernels.Func
	// choiceByType maps a configuration type index to the first
	// supporting entry of choices, or -1: the dispatch-time
	// replacement for PlatformFor's key-string scan.
	choiceByType []int32
	// meta is the indexed-scheduler metadata (compatible-class bitmask,
	// MET's best classes, per-class scaled costs, choice count) lowered
	// over the configuration's cost classes (platform.Config.Classes).
	// Valid only when the configuration interns at most 64 classes; the
	// emulator doesn't build an indexed view otherwise.
	meta sched.ReadyMeta
	// dataBytes is the node's per-direction DMA volume
	// (AppSpec.DataBytes), precomputed.
	dataBytes int
}

// TaskCount reports the number of DAG nodes in the template.
func (p *Program) TaskCount() int { return len(p.nodes) }

// NodeID returns the dense ID of a node name, or -1 if absent; tests
// and tooling use it to index instantiated task slabs.
func (p *Program) NodeID(name string) int {
	// IDs are assigned in sorted-name order, so binary search suffices
	// and the Program carries no name map.
	lo, hi := 0, len(p.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.nodes[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.nodes) && p.nodes[lo].name == name {
		return lo
	}
	return -1
}

// Compile lowers an application archetype against a hardware
// configuration and kernel registry. It performs exactly the
// validation the paper's application handler does at parse time,
// failing fast on unknown runfunc symbols and on nodes that no PE of
// the configuration can execute.
func Compile(spec *appmodel.AppSpec, cfg *platform.Config, reg *kernels.Registry) (*Program, error) {
	if spec == nil {
		return nil, fmt.Errorf("core: compile of nil application spec")
	}
	names := make([]string, 0, len(spec.DAG))
	for name := range spec.DAG {
		names = append(names, name)
	}
	sort.Strings(names)
	ids := make(map[string]int32, len(names))
	for i, name := range names {
		ids[name] = int32(i)
	}

	p := &Program{
		Spec:  spec,
		nodes: make([]progNode, len(names)),
	}
	// Flat arenas for the per-node slices: one allocation each, with
	// the nodes holding sub-slices.
	totalSucc, totalPlat := 0, 0
	for _, name := range names {
		n := spec.DAG[name]
		totalSucc += len(n.Successors)
		totalPlat += len(n.Platforms)
	}
	succArena := make([]int32, 0, totalSucc)
	choiceArena := make([]sched.PlatformChoice, 0, totalPlat)
	funcArena := make([]kernels.Func, 0, totalPlat)
	typeArena := make([]int32, 0, len(names)*cfg.NumTypes())
	classes := cfg.Classes()
	var costArena []int64
	if len(classes) <= 64 {
		costArena = make([]int64, 0, len(names)*len(classes))
	}

	for i, name := range names {
		node := spec.DAG[name]
		pn := &p.nodes[i]
		pn.name = name
		pn.spec = node
		pn.preds = int32(len(node.Predecessors))
		pn.dataBytes = spec.DataBytes(name)

		start := len(succArena)
		for _, succ := range node.Successors {
			sid, ok := ids[succ]
			if !ok {
				return nil, fmt.Errorf("core: %s node %s lists unknown successor %q", spec.AppName, name, succ)
			}
			succArena = append(succArena, sid)
		}
		pn.succs = succArena[start:len(succArena):len(succArena)]

		cstart := len(choiceArena)
		supported := false
		for _, plat := range node.Platforms {
			so := plat.SharedObject
			if so == "" {
				so = spec.SharedObject
			}
			f, err := reg.Lookup(so, plat.RunFunc)
			if err != nil {
				return nil, fmt.Errorf("core: %s node %s: %w", spec.AppName, name, err)
			}
			typeID := cfg.TypeIndex(plat.Name)
			if typeID >= 0 {
				supported = true
			}
			choiceArena = append(choiceArena, sched.PlatformChoice{
				Key:    plat.Name,
				TypeID: typeID,
				CostNS: plat.CostNS,
			})
			funcArena = append(funcArena, f)
		}
		if !supported {
			return nil, fmt.Errorf("core: %s node %s supports no PE present in config %s",
				spec.AppName, name, cfg.Name)
		}
		pn.choices = choiceArena[cstart:len(choiceArena):len(choiceArena)]
		pn.funcs = funcArena[cstart:len(funcArena):len(funcArena)]

		tstart := len(typeArena)
		for t := 0; t < cfg.NumTypes(); t++ {
			typeArena = append(typeArena, -1)
		}
		pn.choiceByType = typeArena[tstart:len(typeArena):len(typeArena)]
		for ci, c := range pn.choices {
			// First entry wins, matching PlatformFor's scan order.
			if c.TypeID >= 0 && pn.choiceByType[c.TypeID] < 0 {
				pn.choiceByType[c.TypeID] = int32(ci)
			}
		}

		// Indexed-scheduler metadata, lowered over the configuration's
		// cost classes: the compatible-class bitmask, the per-class
		// scaled cost of the first matching choice (choiceByType is
		// exactly that first-match scan, and class speed is uniform by
		// construction, so this is costOn's arithmetic verbatim), and
		// MET's compiled best type expanded to its classes (the first
		// strict cost minimum over the choice list, mirroring
		// MET.Schedule's scan — a minimum on an absent platform leaves
		// the mask empty and the task waits, exactly as on the slice
		// path). sched.NewView interns the identical class partition
		// from the handler table, so the mask numbering cannot drift.
		if len(classes) <= 64 {
			cstart := len(costArena)
			for c, sig := range classes {
				ci := pn.choiceByType[sig.TypeIdx]
				cost := int64(0)
				if ci >= 0 {
					pn.meta.ClassMask |= 1 << uint(c)
					cost = int64(float64(pn.choices[ci].CostNS) * sig.Speed)
				}
				costArena = append(costArena, cost)
			}
			pn.meta.Costs = costArena[cstart:len(costArena):len(costArena)]
			bestType := int32(-1)
			var bestCost int64 = -1
			for _, c := range pn.choices {
				if bestCost < 0 || c.CostNS < bestCost {
					bestCost = c.CostNS
					bestType = int32(c.TypeID)
				}
			}
			if bestType >= 0 {
				for c, sig := range classes {
					if int32(sig.TypeIdx) == bestType {
						pn.meta.METMask |= 1 << uint(c)
					}
				}
			}
			pn.meta.NumChoices = int32(len(pn.choices))
		}

		if pn.preds == 0 {
			p.heads = append(p.heads, int32(i))
		}
	}
	if len(p.heads) == 0 {
		return nil, fmt.Errorf("core: %s: DAG has no head node (cyclic)", spec.AppName)
	}
	return p, nil
}

// programKey identifies a compiled template: templates are valid for
// exactly one (archetype, configuration, registry) triple, all
// compared by identity.
type programKey struct {
	spec *appmodel.AppSpec
	cfg  *platform.Config
	reg  *kernels.Registry
}

// ProgramCache memoises compiled templates so every arrival of every
// sweep cell that shares an archetype reuses one Program. It is safe
// for concurrent use; the cached side requires specs, configurations
// and registries to be treated as immutable once emulated (mutating a
// spec after its first Run would go unseen — build a fresh spec
// instead, as the test suite does).
type ProgramCache struct {
	mu sync.RWMutex
	m  map[programKey]*Program
}

// programCacheCap bounds the cache; experiment suites compile a few
// archetypes per configuration, so the cap exists only to keep
// pathological spec churn (generated DAGs, fuzzing) from pinning
// memory. Overflow resets the whole map: compilation is cheap relative
// to any eviction bookkeeping.
const programCacheCap = 256

// NewProgramCache returns an empty cache. Emulators fall back to a
// process-wide shared cache when Options.Programs is nil, so a private
// cache is only needed for isolation (tests, spec churn).
func NewProgramCache() *ProgramCache {
	return &ProgramCache{m: make(map[programKey]*Program)}
}

// sharedPrograms is the process-wide default template cache: all
// emulators and sweep workers share compiled templates keyed by
// (spec, config, registry) identity.
var sharedPrograms = NewProgramCache()

// Get returns the cached template for the triple, compiling it on the
// first request. Compile errors are not cached.
func (c *ProgramCache) Get(spec *appmodel.AppSpec, cfg *platform.Config, reg *kernels.Registry) (*Program, error) {
	k := programKey{spec: spec, cfg: cfg, reg: reg}
	c.mu.RLock()
	p := c.m[k]
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	// Compile outside the lock; a racing duplicate compile produces an
	// identical immutable Program, and the store below keeps whichever
	// lands first.
	p, err := Compile(spec, cfg, reg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[k]; ok {
		return prev, nil
	}
	if len(c.m) >= programCacheCap {
		c.m = make(map[programKey]*Program)
	}
	c.m[k] = p
	return p, nil
}

// Len reports the number of cached templates (tests).
func (c *ProgramCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
