package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// FuzzProgramLowering throws fuzzer-shaped layered DAGs at Compile and
// checks the lowered Program field by field against the spec and the
// configuration's class table: dense sorted-name IDs, head set, pred
// counts, successor wiring, choiceByType first-match order, and the
// indexed-scheduler metadata (class mask, per-class scaled costs, MET
// mask, choice count). The metadata is what the PR 4/5 indexed fast
// path schedules from, so any drift here is a silent parity break.
func FuzzProgramLowering(f *testing.F) {
	f.Add(int64(0), 2, 2, 0, 0)
	f.Add(int64(1), 4, 3, 1, 1)
	f.Add(int64(99), 1, 1, 2, 2)
	f.Add(int64(-5), 3, 2, 1, 3)
	f.Fuzz(func(t *testing.T, seed int64, layers, width, cfgMode, platMode int) {
		cfg := lowerFuzzConfig(cfgMode)
		rng := rand.New(rand.NewSource(seed))
		reg := kernels.NewRegistry()
		spec := lowerFuzzSpec(rng, reg, cfg, layers, width, platMode)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}

		p, err := Compile(spec, cfg, reg)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if p.TaskCount() != len(spec.DAG) {
			t.Fatalf("TaskCount %d != %d spec nodes", p.TaskCount(), len(spec.DAG))
		}

		classes := cfg.Classes()
		for id, pn := range p.nodes {
			node, ok := spec.DAG[pn.name]
			if !ok {
				t.Fatalf("node %d name %q not in spec", id, pn.name)
			}
			if got := p.NodeID(pn.name); got != id {
				t.Fatalf("NodeID(%q) = %d, want %d", pn.name, got, id)
			}
			if int(pn.preds) != len(node.Predecessors) {
				t.Fatalf("%s: preds %d != %d", pn.name, pn.preds, len(node.Predecessors))
			}
			if len(pn.succs) != len(node.Successors) {
				t.Fatalf("%s: %d succs != %d", pn.name, len(pn.succs), len(node.Successors))
			}
			for i, sid := range pn.succs {
				if p.nodes[sid].name != node.Successors[i] {
					t.Fatalf("%s: succ %d lowered to %q, spec says %q",
						pn.name, i, p.nodes[sid].name, node.Successors[i])
				}
			}

			// choices align with Platforms; choiceByType is the first
			// supporting entry per type.
			if len(pn.choices) != len(node.Platforms) {
				t.Fatalf("%s: %d choices != %d platforms", pn.name, len(pn.choices), len(node.Platforms))
			}
			for i, c := range pn.choices {
				if c.Key != node.Platforms[i].Name || c.CostNS != node.Platforms[i].CostNS {
					t.Fatalf("%s: choice %d = %+v, platform %+v", pn.name, i, c, node.Platforms[i])
				}
				if c.TypeID != cfg.TypeIndex(c.Key) {
					t.Fatalf("%s: choice %d TypeID %d != config index %d",
						pn.name, i, c.TypeID, cfg.TypeIndex(c.Key))
				}
			}
			for typ := 0; typ < cfg.NumTypes(); typ++ {
				want := int32(-1)
				for i, c := range pn.choices {
					if c.TypeID == typ {
						want = int32(i)
						break
					}
				}
				if pn.choiceByType[typ] != want {
					t.Fatalf("%s: choiceByType[%d] = %d, want %d", pn.name, typ, pn.choiceByType[typ], want)
				}
			}

			// Indexed metadata over the class table.
			if int(pn.meta.NumChoices) != len(pn.choices) {
				t.Fatalf("%s: meta.NumChoices %d != %d", pn.name, pn.meta.NumChoices, len(pn.choices))
			}
			var bestType int32 = -1
			var bestCost int64 = -1
			for _, c := range pn.choices {
				if bestCost < 0 || c.CostNS < bestCost {
					bestCost = c.CostNS
					bestType = int32(c.TypeID)
				}
			}
			for ci, sig := range classes {
				first := pn.choiceByType[sig.TypeIdx]
				if first >= 0 {
					if pn.meta.ClassMask&(1<<uint(ci)) == 0 {
						t.Fatalf("%s: supported class %d missing from mask %b", pn.name, ci, pn.meta.ClassMask)
					}
					want := int64(float64(pn.choices[first].CostNS) * sig.Speed)
					if pn.meta.Costs[ci] != want {
						t.Fatalf("%s: class %d cost %d, want %d", pn.name, ci, pn.meta.Costs[ci], want)
					}
				} else {
					if pn.meta.ClassMask&(1<<uint(ci)) != 0 {
						t.Fatalf("%s: unsupported class %d set in mask", pn.name, ci)
					}
					if pn.meta.Costs[ci] != 0 {
						t.Fatalf("%s: unsupported class %d has cost %d", pn.name, ci, pn.meta.Costs[ci])
					}
				}
				metBit := pn.meta.METMask&(1<<uint(ci)) != 0
				if metBit != (bestType >= 0 && int32(sig.TypeIdx) == bestType) {
					t.Fatalf("%s: class %d MET bit %v, best type %d (sig %d)",
						pn.name, ci, metBit, bestType, sig.TypeIdx)
				}
			}
		}

		// Head set: exactly the zero-pred nodes, ascending.
		var wantHeads []int32
		for id, pn := range p.nodes {
			if pn.preds == 0 {
				wantHeads = append(wantHeads, int32(id))
			}
		}
		if len(wantHeads) != len(p.heads) {
			t.Fatalf("heads %v, want %v", p.heads, wantHeads)
		}
		for i := range wantHeads {
			if p.heads[i] != wantHeads[i] {
				t.Fatalf("heads %v, want %v", p.heads, wantHeads)
			}
		}
		if p.NodeID("no_such_node") != -1 {
			t.Fatal("NodeID of an absent name must be -1")
		}
	})
}

// lowerFuzzConfig picks a hardware configuration by mode: homogeneous,
// accelerator-bearing, big.LITTLE (multi-class single-key types), and
// a three-way heterogeneous mix.
func lowerFuzzConfig(mode int) *platform.Config {
	m := mode % 4
	if m < 0 {
		m += 4
	}
	var cfg *platform.Config
	var err error
	switch m {
	case 0:
		cfg, err = platform.Synthetic(3, 0)
	case 1:
		cfg, err = platform.Synthetic(2, 2)
	case 2:
		cfg, err = platform.OdroidXU3(2, 2)
	default:
		cfg, err = platform.SyntheticHet(3, 2, 1)
	}
	if err != nil {
		panic(err)
	}
	return cfg
}

// lowerFuzzSpec builds a layered DAG whose nodes draw platform choices
// from the configuration's type keys, sometimes adding a key no PE of
// the configuration carries (TypeID -1 on the lowered choice) and
// sometimes repeating a key (only the first may win choiceByType).
func lowerFuzzSpec(rng *rand.Rand, reg *kernels.Registry, cfg *platform.Config, layers, width, platMode int) *appmodel.AppSpec {
	layers = clampInt(layers, 1, 5)
	width = clampInt(width, 1, 4)
	spec := &appmodel.AppSpec{
		AppName:      "lowerfuzz",
		SharedObject: "lowerfuzz.so",
		Variables:    map[string]appmodel.VariableSpec{"x": {Bytes: 8}},
		DAG:          map[string]appmodel.NodeSpec{},
	}
	_ = reg.Register(spec.SharedObject, "nop", func(ctx *kernels.Context) error { return nil })

	keys := cfg.TypeKeys()
	var prev []string
	node := 0
	for l := 0; l < layers; l++ {
		w := rng.Intn(width) + 1
		var layer []string
		for i := 0; i < w; i++ {
			name := fmt.Sprintf("n%02d", node)
			node++
			ns := appmodel.NodeSpec{Arguments: []string{"x"}}
			// Always at least one supported choice, then extras by mode.
			pick := keys[rng.Intn(len(keys))]
			ns.Platforms = append(ns.Platforms, appmodel.PlatformSpec{
				Name: pick, RunFunc: "nop", CostNS: int64(rng.Intn(10_000) + 1),
			})
			extra := platMode % 3
			if extra < 0 {
				extra += 3
			}
			for e := 0; e < extra; e++ {
				name := keys[rng.Intn(len(keys))]
				if rng.Intn(3) == 0 {
					name = "ghost_accel" // absent from every config
				}
				ns.Platforms = append(ns.Platforms, appmodel.PlatformSpec{
					Name: name, RunFunc: "nop", CostNS: int64(rng.Intn(10_000) + 1),
				})
			}
			for _, p := range prev {
				if rng.Intn(2) == 0 {
					ns.Predecessors = append(ns.Predecessors, p)
				}
			}
			if len(ns.Predecessors) == 0 && l > 0 {
				ns.Predecessors = []string{prev[0]}
			}
			spec.DAG[name] = ns
			layer = append(layer, name)
		}
		prev = layer
	}
	spec.Normalize()
	return spec
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
