package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// speedClassedConfig hand-builds a configuration of n same-key "cpu"
// PEs with n distinct speed factors — n cost classes under a single
// interned type, the big.LITTLE shape pushed to (and past) the indexed
// representation boundary. Hand-built Configs exercise the
// no-finalize fallback paths of the platform package on top.
func speedClassedConfig(n int) *platform.Config {
	cfg := &platform.Config{
		Name:     fmt.Sprintf("%dclass-test", n),
		Platform: "test",
		Overlay:  platform.A53,
	}
	for i := 0; i < n; i++ {
		typ := &platform.PEType{
			Name:        fmt.Sprintf("CPU%d", i),
			Key:         "cpu",
			Class:       platform.CPU,
			SpeedFactor: 1 + float64(i)/1000,
			SchedOpNS:   55,
			PowerW:      0.8,
		}
		cfg.PEs = append(cfg.PEs, &platform.PE{ID: i, Type: typ, HostCore: i, Share: 1})
	}
	return cfg
}

// classBoundaryWorkload is a small cpu-only-able trace dense enough to
// exercise scheduling on wide pools.
func classBoundaryWorkload() []Arrival {
	wtx := apps.WiFiTX(apps.DefaultWiFiParams())
	wrx := apps.WiFiRX(apps.DefaultWiFiParams())
	var out []Arrival
	for i := 0; i < 12; i++ {
		out = append(out,
			Arrival{Spec: wtx, At: vtime.Time(i) * 40_000},
			Arrival{Spec: wrx, At: vtime.Time(i)*40_000 + 15_000},
		)
	}
	return out
}

// TestSchedulerPathClassBoundary pins the fallback trigger end to end
// at its exact boundary: 64 interned cost classes run indexed, the
// 65th drops the emulator to the slice-rebuild path — and since PR 5
// that drop is visible (Emulator.SchedulerPath, Report.SchedulerPath)
// instead of silent. Both sides of the boundary must produce reports
// byte-identical to their SliceOnly forcing.
func TestSchedulerPathClassBoundary(t *testing.T) {
	trace := classBoundaryWorkload()
	for _, n := range []int{64, 65} {
		cfg := speedClassedConfig(n)
		if got := cfg.NumClasses(); got != n {
			t.Fatalf("hand-built config interned %d classes, want %d", got, n)
		}
		wantPath := SchedulerPathIndexed
		if n > 64 {
			wantPath = SchedulerPathSliceRebuild
		}
		for _, policyName := range []string{"frfs", "eft", "eft-power"} {
			indexed, err := sched.New(policyName, 5)
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(Options{
				Config: cfg, Policy: indexed, Registry: apps.Registry(),
				Seed: 2, SkipExecution: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if e.SchedulerPath() != wantPath {
				t.Fatalf("%d classes/%s: SchedulerPath = %q, want %q", n, policyName, e.SchedulerPath(), wantPath)
			}
			got, err := e.Run(trace)
			if err != nil {
				t.Fatalf("%d classes/%s: %v", n, policyName, err)
			}
			if got.SchedulerPath != wantPath {
				t.Fatalf("%d classes/%s: report stamped %q, want %q", n, policyName, got.SchedulerPath, wantPath)
			}
			slice, _ := sched.New(policyName, 5)
			eS, err := New(Options{
				Config: cfg, Policy: sched.SliceOnly(slice), Registry: apps.Registry(),
				Seed: 2, SkipExecution: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n <= 64 && eS.SchedulerPath() != SchedulerPathSlice {
				t.Fatalf("SliceOnly emulator reports path %q", eS.SchedulerPath())
			}
			want, err := eS.Run(trace)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, want, got)
		}
	}
}

// TestCompileMetaMatchesViewMetaFor cross-checks the two independent
// derivations of the class partition: core.Compile lowers ReadyMeta
// against platform.Config.Classes, while sched.NewView interns classes
// from the handler table. For every node of every application on the
// three platform families — classes==types (ZCU102), a split "cpu"
// type (Odroid), and both at many-PE scale (synthetic-het) — the
// compiled metadata must equal the view's own lowering bit for bit.
func TestCompileMetaMatchesViewMetaFor(t *testing.T) {
	cfgs := []*platform.Config{zcu(t, 3, 2)}
	if od, err := platform.OdroidXU3(4, 3); err == nil {
		cfgs = append(cfgs, od)
	} else {
		t.Fatal(err)
	}
	if het, err := platform.SyntheticHet(8, 8, 4); err == nil {
		cfgs = append(cfgs, het)
	} else {
		t.Fatal(err)
	}
	reg := apps.Registry()
	for _, cfg := range cfgs {
		e, err := New(Options{
			Config: cfg, Policy: sched.EFT{}, Registry: reg, SkipExecution: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if e.view == nil {
			t.Fatalf("%s: no indexed view", cfg.Name)
		}
		if e.view.NumClasses() != cfg.NumClasses() {
			t.Fatalf("%s: view interned %d classes, config %d", cfg.Name, e.view.NumClasses(), cfg.NumClasses())
		}
		for _, spec := range fourApps() {
			p, err := Compile(spec, cfg, reg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p.nodes {
				pn := &p.nodes[i]
				want := e.view.MetaFor(pn.choices)
				if pn.meta.ClassMask != want.ClassMask || pn.meta.METMask != want.METMask ||
					pn.meta.NumChoices != want.NumChoices {
					t.Fatalf("%s/%s/%s: compiled meta %+v, view lowering %+v",
						cfg.Name, spec.AppName, pn.name, pn.meta, want)
				}
				if len(pn.meta.Costs) != len(want.Costs) {
					t.Fatalf("%s/%s/%s: cost table length %d vs %d",
						cfg.Name, spec.AppName, pn.name, len(pn.meta.Costs), len(want.Costs))
				}
				for c := range want.Costs {
					if pn.meta.Costs[c] != want.Costs[c] {
						t.Fatalf("%s/%s/%s: class %d cost %d vs %d",
							cfg.Name, spec.AppName, pn.name, c, pn.meta.Costs[c], want.Costs[c])
					}
				}
			}
		}
	}
}

// TestNewRejectsDegenerateConfigs pins the construction-time
// validation: configurations that would crash or stall mid-run fail at
// New with a descriptive error.
func TestNewRejectsDegenerateConfigs(t *testing.T) {
	reg := apps.Registry()
	if _, err := New(Options{Policy: sched.FRFS{}, Registry: reg}); err == nil ||
		!strings.Contains(err.Error(), "at least one PE") {
		t.Fatalf("nil config: %v", err)
	}
	empty := &platform.Config{Name: "empty", Overlay: platform.A53}
	if _, err := New(Options{Config: empty, Policy: sched.FRFS{}, Registry: reg}); err == nil ||
		!strings.Contains(err.Error(), "at least one PE") {
		t.Fatalf("empty config: %v", err)
	}
	noOverlay := &platform.Config{Name: "no-overlay", PEs: []*platform.PE{
		{ID: 0, Type: platform.A53, Share: 1},
	}}
	if _, err := New(Options{Config: noOverlay, Policy: sched.FRFS{}, Registry: reg}); err == nil ||
		!strings.Contains(err.Error(), "overlay") {
		t.Fatalf("overlay-less config: %v", err)
	}
	noType := &platform.Config{Name: "no-type", Overlay: platform.A53, PEs: []*platform.PE{
		{ID: 0, Share: 1},
	}}
	if _, err := New(Options{Config: noType, Policy: sched.FRFS{}, Registry: reg}); err == nil ||
		!strings.Contains(err.Error(), "no type") {
		t.Fatalf("type-less PE: %v", err)
	}
}
