package core

import (
	"strings"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

func zcu(t *testing.T, cores, ffts int) *platform.Config {
	t.Helper()
	cfg, err := platform.ZCU102(cores, ffts)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func emulator(t *testing.T, cfg *platform.Config, policy string) *Emulator {
	t.Helper()
	p, err := sched.New(policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Config: cfg, Policy: p, Registry: apps.Registry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func run(t *testing.T, e *Emulator, arrivals []Arrival) *Emulator {
	t.Helper()
	if _, err := e.Run(arrivals); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	cfg := zcu(t, 1, 0)
	pol, _ := sched.New("frfs", 1)
	if _, err := New(Options{Policy: pol, Registry: apps.Registry()}); err == nil {
		t.Fatal("nil config accepted")
	}
	if _, err := New(Options{Config: cfg, Registry: apps.Registry()}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := New(Options{Config: cfg, Policy: pol}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestSingleRangeDetection(t *testing.T) {
	p := apps.DefaultRangeParams()
	spec := apps.RangeDetection(p)
	e := emulator(t, zcu(t, 1, 0), "frfs")
	report, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tasks) != 6 {
		t.Fatalf("executed %d tasks, want 6", len(report.Tasks))
	}
	if len(report.Apps) != 1 || report.Apps[0].App != apps.NameRangeDetection {
		t.Fatalf("app records: %+v", report.Apps)
	}
	if report.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Functional verification: the emulated pipeline found the target.
	if err := apps.CheckRangeDetection(e.instances[0].Mem, p); err != nil {
		t.Fatal(err)
	}
}

func TestTaskRecordsConsistent(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	e := emulator(t, zcu(t, 2, 1), "frfs")
	report, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range report.Tasks {
		if r.Start < r.Ready {
			t.Fatalf("%s started before ready", r.Node)
		}
		if r.End <= r.Start {
			t.Fatalf("%s has non-positive duration", r.Node)
		}
		seen[r.Node] = true
	}
	// DAG precedence respected in virtual time.
	byNode := map[string]vtime.Time{}
	startOf := map[string]vtime.Time{}
	for _, r := range report.Tasks {
		byNode[r.Node] = r.End
		startOf[r.Node] = r.Start
	}
	//repolint:allow detorder assertion-only scan; any precedence violation fails the test whichever node is visited first
	for name, node := range spec.DAG {
		for _, pred := range node.Predecessors {
			if startOf[name] < byNode[pred] {
				t.Fatalf("%s started at %v before predecessor %s ended at %v",
					name, startOf[name], pred, byNode[pred])
			}
		}
	}
}

func TestFullWorkloadAllPoliciesFunctional(t *testing.T) {
	// One instance of each application on 3C+2F under every policy:
	// scheduling must never change numeric results.
	rp := apps.DefaultRangeParams()
	wp := apps.DefaultWiFiParams()
	for _, policy := range sched.Names() {
		specs := []*appmodel.AppSpec{
			apps.RangeDetection(rp),
			apps.WiFiTX(wp),
			apps.WiFiRX(wp),
		}
		var arrivals []Arrival
		for _, s := range specs {
			arrivals = append(arrivals, Arrival{Spec: s, At: 0})
		}
		e := emulator(t, zcu(t, 3, 2), policy)
		report, err := e.Run(arrivals)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(report.Tasks) != 6+7+9 {
			t.Fatalf("%s: %d tasks", policy, len(report.Tasks))
		}
		for _, inst := range e.instances {
			var err error
			switch inst.Spec.AppName {
			case apps.NameRangeDetection:
				err = apps.CheckRangeDetection(inst.Mem, rp)
			case apps.NameWiFiTX:
				err = apps.CheckWiFiTX(inst.Mem, wp)
			case apps.NameWiFiRX:
				err = apps.CheckWiFiRX(inst.Mem, wp)
			}
			if err != nil {
				t.Fatalf("%s: %s: %v", policy, inst.Spec.AppName, err)
			}
		}
	}
}

func TestPulseDopplerThroughEmulator(t *testing.T) {
	if testing.Short() {
		t.Skip("770-task emulation")
	}
	p := apps.DefaultDopplerParams()
	e := emulator(t, zcu(t, 3, 2), "frfs")
	report, err := e.Run([]Arrival{{Spec: apps.PulseDoppler(p), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tasks) != 770 {
		t.Fatalf("executed %d tasks, want 770", len(report.Tasks))
	}
	if err := apps.CheckPulseDoppler(e.instances[0].Mem, p); err != nil {
		t.Fatal(err)
	}
	// The accelerators should have picked up part of the FFT load
	// under FRFS with busy cores.
	fftTasks := 0
	for _, r := range report.Tasks {
		if r.Platform == "fft" {
			fftTasks++
		}
	}
	if fftTasks == 0 {
		t.Fatal("no task ever ran on an FFT accelerator")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	mk := func() vtime.Duration {
		e, err := New(Options{
			Config:   zcu(t, 2, 1),
			Policy:   sched.FRFS{},
			Registry: apps.Registry(),
			Seed:     42, JitterSigma: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run([]Arrival{{Spec: spec, At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed produced different makespans: %v vs %v", a, b)
	}
	// Rerunning the same emulator is also deterministic.
	e := emulator(t, zcu(t, 2, 1), "frfs")
	r1, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("emulator reuse not deterministic: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

func TestJitterChangesSpread(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	makespan := func(seed int64) vtime.Duration {
		e, _ := New(Options{
			Config:   zcu(t, 1, 0),
			Policy:   sched.FRFS{},
			Registry: apps.Registry(),
			Seed:     seed, JitterSigma: 0.05,
		})
		r, err := e.Run([]Arrival{{Spec: spec, At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if makespan(1) == makespan(2) {
		t.Fatal("different jitter seeds produced identical makespans")
	}
}

func TestMorePEsShortenMakespan(t *testing.T) {
	// The core Figure 9 relation: 3C+0F beats 1C+0F on a multi-app
	// workload.
	wp := apps.DefaultWiFiParams()
	arr := func() []Arrival {
		return []Arrival{
			{Spec: apps.RangeDetection(apps.DefaultRangeParams()), At: 0},
			{Spec: apps.WiFiTX(wp), At: 0},
			{Spec: apps.WiFiRX(wp), At: 0},
		}
	}
	small, err := emulator(t, zcu(t, 1, 0), "frfs").Run(arr())
	if err != nil {
		t.Fatal(err)
	}
	big, err := emulator(t, zcu(t, 3, 0), "frfs").Run(arr())
	if err != nil {
		t.Fatal(err)
	}
	if big.Makespan >= small.Makespan {
		t.Fatalf("3C+0F (%v) not faster than 1C+0F (%v)", big.Makespan, small.Makespan)
	}
}

func TestUtilizationBounds(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	report, err := emulator(t, zcu(t, 2, 1), "frfs").Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range report.PEs {
		u := report.Utilization(pe.PEID)
		if u < 0 || u > 1 {
			t.Fatalf("PE %d utilization %v outside [0,1]", pe.PEID, u)
		}
	}
	if report.Utilization(99) != 0 {
		t.Fatal("unknown PE should have zero utilization")
	}
}

func TestSchedulingOverheadCharged(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	report, err := emulator(t, zcu(t, 1, 0), "frfs").Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sched.Invocations == 0 || report.Sched.OverheadNS == 0 {
		t.Fatalf("no scheduling overhead recorded: %+v", report.Sched)
	}
	// FRFS on the A53 overlay: overhead per invocation is in the
	// microsecond range (the paper's ~2.5us).
	avg := report.Sched.AvgOverheadNS()
	if avg < 500 || avg > 20_000 {
		t.Fatalf("FRFS avg overhead %vns outside the plausible band", avg)
	}
}

func TestArrivalInjectionTiming(t *testing.T) {
	wp := apps.DefaultWiFiParams()
	spec := apps.WiFiTX(wp)
	at := vtime.Time(5 * vtime.Millisecond)
	report, err := emulator(t, zcu(t, 1, 0), "frfs").Run([]Arrival{{Spec: spec, At: at}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Apps[0].Injected < at {
		t.Fatalf("injected at %v before arrival %v", report.Apps[0].Injected, at)
	}
	for _, r := range report.Tasks {
		if r.Start < at {
			t.Fatalf("task %s started before the app arrived", r.Node)
		}
	}
	if vtime.Time(report.Makespan) < at {
		t.Fatal("makespan ignores the arrival offset")
	}
}

func TestNegativeArrivalRejected(t *testing.T) {
	spec := apps.WiFiTX(apps.DefaultWiFiParams())
	if _, err := emulator(t, zcu(t, 1, 0), "frfs").Run([]Arrival{{Spec: spec, At: -1}}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if _, err := emulator(t, zcu(t, 1, 0), "frfs").Run([]Arrival{{}}); err == nil {
		t.Fatal("nil spec accepted")
	}
}

func TestUnknownRunFuncFailsAtParse(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	n := spec.DAG["MAX"]
	n.Platforms = []appmodel.PlatformSpec{{Name: "cpu", RunFunc: "ghost_func", CostNS: 10}}
	spec.DAG["MAX"] = n
	_, err := emulator(t, zcu(t, 1, 0), "frfs").Run([]Arrival{{Spec: spec, At: 0}})
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("want undefined-symbol parse error, got %v", err)
	}
}

func TestUnsupportedPlatformFailsAtParse(t *testing.T) {
	// An fft-only node cannot run on a CPU-only configuration.
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	n := spec.DAG["FFT_0"]
	var fftOnly []appmodel.PlatformSpec
	for _, p := range n.Platforms {
		if p.Name == "fft" {
			fftOnly = append(fftOnly, p)
		}
	}
	n.Platforms = fftOnly
	spec.DAG["FFT_0"] = n
	_, err := emulator(t, zcu(t, 2, 0), "frfs").Run([]Arrival{{Spec: spec, At: 0}})
	if err == nil || !strings.Contains(err.Error(), "supports no PE") {
		t.Fatalf("want unsupported-platform error, got %v", err)
	}
}

func TestAcceleratorContentionSlowsTransfers(t *testing.T) {
	// Figure 9's 2C+2F anomaly: with both FFT manager threads sharing
	// one host core, accelerator tasks take longer than with a
	// dedicated manager core (1C+2F placement).
	spec := apps.RangeDetection(apps.DefaultRangeParams())

	durOn := func(cfg *platform.Config) vtime.Duration {
		e := emulator(t, cfg, "met") // MET chooses fastest annotated platform
		_, err := e.Run([]Arrival{{Spec: spec, At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		var total vtime.Duration
		var count int
		for _, r := range e.report.Tasks {
			if r.Platform == "fft" {
				total += r.Duration()
				count++
			}
		}
		if count == 0 {
			return 0
		}
		return total / vtime.Duration(count)
	}
	shared := durOn(zcu(t, 2, 2))    // both managers share one core
	dedicated := durOn(zcu(t, 1, 2)) // one manager per unused core
	if shared == 0 || dedicated == 0 {
		t.Skip("MET did not route any task to the accelerator")
	}
	if shared <= dedicated {
		t.Fatalf("shared-manager accel tasks (%v) not slower than dedicated (%v)", shared, dedicated)
	}
}

func TestReservationQueuePolicy(t *testing.T) {
	wp := apps.DefaultWiFiParams()
	arr := []Arrival{
		{Spec: apps.RangeDetection(apps.DefaultRangeParams()), At: 0},
		{Spec: apps.WiFiTX(wp), At: 0},
		{Spec: apps.WiFiRX(wp), At: 0},
	}
	rq, err := emulator(t, zcu(t, 2, 0), "frfs-rq").Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := emulator(t, zcu(t, 2, 0), "frfs").Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rq.Tasks) != len(plain.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(rq.Tasks), len(plain.Tasks))
	}
	// Queued dispatch skips scheduler invocations: strictly fewer.
	if rq.Sched.Invocations >= plain.Sched.Invocations {
		t.Fatalf("reservation queues did not reduce invocations: %d vs %d",
			rq.Sched.Invocations, plain.Sched.Invocations)
	}
}

func TestMeasuredTimingMode(t *testing.T) {
	spec := apps.WiFiTX(apps.DefaultWiFiParams())
	e, err := New(Options{
		Config:   zcu(t, 1, 0),
		Policy:   sched.FRFS{},
		Registry: apps.Registry(),
		Timing:   Measured,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Makespan <= 0 {
		t.Fatal("measured mode produced zero makespan")
	}
	if err := apps.CheckWiFiTX(e.instances[0].Mem, apps.DefaultWiFiParams()); err != nil {
		t.Fatal(err)
	}
}

func TestSkipExecutionTimingOnly(t *testing.T) {
	spec := apps.RangeDetection(apps.DefaultRangeParams())
	e, err := New(Options{
		Config:        zcu(t, 1, 0),
		Policy:        sched.FRFS{},
		Registry:      apps.Registry(),
		SkipExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := e.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tasks) != 6 || report.Makespan <= 0 {
		t.Fatalf("timing-only run incomplete: %d tasks", len(report.Tasks))
	}
	// Timing-only instances never allocate variable memory, so kernels
	// cannot have executed.
	if e.instances[0].Mem != nil {
		t.Fatal("SkipExecution still allocated instance memory")
	}
	// Timing must match a functional run exactly: execution and the
	// timing model are independent.
	ef, err := New(Options{
		Config:   zcu(t, 1, 0),
		Policy:   sched.FRFS{},
		Registry: apps.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ef.Run([]Arrival{{Spec: spec, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan != report.Makespan {
		t.Fatalf("timing-only makespan %v != functional %v", report.Makespan, full.Makespan)
	}
}

func TestStatusString(t *testing.T) {
	if StatusIdle.String() != "idle" || StatusRun.String() != "run" || StatusComplete.String() != "complete" {
		t.Fatal("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status string empty")
	}
}

func TestEmptyWorkload(t *testing.T) {
	report, err := emulator(t, zcu(t, 1, 0), "frfs").Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Makespan != 0 || len(report.Tasks) != 0 {
		t.Fatalf("empty workload produced %v / %d tasks", report.Makespan, len(report.Tasks))
	}
}
