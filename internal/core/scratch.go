package core

import (
	"repro/internal/sched"
	"repro/internal/stats"
)

// Scratch holds the emulator's reusable working buffers: the sorted
// arrival queue, the ready list, the per-invocation scheduler views,
// and a capacity hint for the report's task records. None of this
// memory escapes a Run call (the sched.Policy contract forbids
// retaining the view slices), so a Scratch can be handed from one
// emulation to the next — the sweep engine keeps one per worker in a
// sync.Pool so large grids stop paying the allocation cost of the
// scheduler hot path on every cell.
//
// A Scratch is not safe for concurrent use: at most one Emulator may
// run against it at a time.
type Scratch struct {
	arrivals   []Arrival
	ready      []*Task
	readyViews []sched.Task
	peViews    []sched.PE
	// taskCap remembers the largest task-record count seen, so the
	// next report's stats buffer is sized once instead of grown
	// append-by-append.
	taskCap int
}

// NewScratch returns an empty scratch. Emulators created without an
// explicit scratch allocate their own, so sharing is opt-in.
func NewScratch() *Scratch { return &Scratch{} }

// sortedArrivals returns a scratch-backed copy of arrivals, to be
// sorted by the caller.
func (s *Scratch) sortedArrivals(arrivals []Arrival) []Arrival {
	s.arrivals = append(s.arrivals[:0], arrivals...)
	return s.arrivals
}

// taskRecords returns a fresh record slice presized to the largest
// emulation this scratch has seen. The slice escapes with the report,
// so it is allocated, not pooled — only the capacity knowledge is
// reused.
func (s *Scratch) taskRecords() []stats.TaskRecord {
	return make([]stats.TaskRecord, 0, s.taskCap)
}

// noteTaskCount records a finished emulation's task-record count. The
// hint tracks the workload: it grows to the largest run seen but
// decays when runs shrink, so one dense sweep does not leave every
// later small cell's escaping report slice over-allocated.
func (s *Scratch) noteTaskCount(n int) {
	switch {
	case n > s.taskCap:
		s.taskCap = n
	case n < s.taskCap/4:
		s.taskCap /= 2
	}
}

// release zeroes the pointer-bearing slots of the handed-back buffers
// (including the unused capacity tails), so a scratch parked in the
// sweep engine's pool does not pin the finished emulation's tasks and
// instance memory until its next use.
func (s *Scratch) release() {
	clear(s.arrivals[:cap(s.arrivals)])
	clear(s.ready[:cap(s.ready)])
	clear(s.readyViews[:cap(s.readyViews)])
	clear(s.peViews[:cap(s.peViews)])
}
