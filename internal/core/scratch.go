package core

import (
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// peEvent is one pending PE completion in the emulator's next-event
// tracker: the instant handler h finishes its running task. The
// tracker replaces the per-iteration O(PEs) busyUntil scan with an
// O(log PEs) binary min-heap, which is what keeps the loop flat on the
// 32/64-PE synthetic configurations.
type peEvent struct {
	at vtime.Time
	h  int32
}

// Scratch holds the emulator's reusable working buffers: the sorted
// arrival queue, the ready list, the per-invocation scheduler views
// and assignment masks, the completion-event heap, the task and
// instance slabs, and a capacity hint for the report's task records.
// The report is the only per-Run memory that escapes (the sched.Policy
// contract forbids retaining the view slices), so a Scratch can be
// handed from one emulation to the next — the sweep engine keeps one
// per worker in a sync.Pool so large grids stop paying the allocation
// cost of instantiation and the scheduler hot path on every cell.
//
// Buffer ownership: during a Run the emulator owns every buffer. On
// exit, release() clears the transient buffers and the unused capacity
// tails of the slabs, but the slab heads stay live — they back the
// finished emulator's Instances() view — until the next Run on the
// same Scratch reclaims them. A pooled scratch therefore pins at most
// the most recent cell's instantiated state.
//
// A Scratch is not safe for concurrent use: at most one Emulator may
// run against it at a time.
type Scratch struct {
	arrivals []Arrival
	ready    []*Task
	// readyViews backs the per-invocation ready rebuild of the
	// no-indexed-view fallback (configurations with > 64 interned
	// types); emulators with a view maintain the ready slice
	// incrementally instead.
	readyViews []sched.Task

	// progs holds the per-arrival compiled template during Run setup.
	progs []*Program
	// tasks is the instantiation slab: every task of every instance of
	// one Run, contiguous, sliced per instance.
	tasks []Task
	// instances and instPtrs back the emulator's instance table.
	instances []AppInstance
	instPtrs  []*AppInstance

	// taken and remove are schedule()'s per-invocation assignment
	// masks (PE already assigned this batch / ready index consumed).
	taken  []bool
	remove []bool

	// events is the completion min-heap; due collects the handler
	// indices popped for one monitor pass.
	events []peEvent
	due    []int32

	// taskCap remembers the largest task-record count seen, so the
	// next report's stats buffer is sized once instead of grown
	// append-by-append.
	taskCap int
}

// NewScratch returns an empty scratch. Emulators created without an
// explicit scratch allocate their own, so sharing is opt-in.
func NewScratch() *Scratch { return &Scratch{} }

// sortedArrivals returns a scratch-backed copy of arrivals, to be
// sorted by the caller.
func (s *Scratch) sortedArrivals(arrivals []Arrival) []Arrival {
	s.arrivals = append(s.arrivals[:0], arrivals...)
	return s.arrivals
}

// programSlots returns a length-n template slot table.
func (s *Scratch) programSlots(n int) []*Program {
	if cap(s.progs) < n {
		s.progs = make([]*Program, n)
	}
	s.progs = s.progs[:n]
	return s.progs
}

// taskSlots returns the length-n task slab for this Run. Contents are
// stale until the caller overwrites them; instantiation writes every
// element.
func (s *Scratch) taskSlots(n int) []Task {
	if cap(s.tasks) < n {
		s.tasks = make([]Task, n)
	}
	s.tasks = s.tasks[:n]
	return s.tasks
}

// instanceSlots returns the length-n instance slab and pointer table
// for this Run.
func (s *Scratch) instanceSlots(n int) ([]AppInstance, []*AppInstance) {
	if cap(s.instances) < n {
		s.instances = make([]AppInstance, n)
	}
	s.instances = s.instances[:n]
	if cap(s.instPtrs) < n {
		s.instPtrs = make([]*AppInstance, n)
	}
	s.instPtrs = s.instPtrs[:n]
	return s.instances, s.instPtrs
}

// boolMask returns a length-n all-false mask backed by *buf. It does
// NOT clear: the masks live under an all-false invariant — schedule()
// dirties only its batch's indices and resets exactly those after the
// batch is applied, so checkout is O(1) instead of an O(window) clear
// per invocation (a fresh allocation is zeroed by the runtime, and
// clearMasks restores the invariant per run for aborted batches).
func boolMask(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// takenMask returns schedule()'s all-false per-PE assignment mask.
func (s *Scratch) takenMask(n int) []bool { return boolMask(&s.taken, n) }

// removeMask returns schedule()'s all-false per-ready-index mask.
func (s *Scratch) removeMask(n int) []bool { return boolMask(&s.remove, n) }

// clearMasks restores the masks' all-false invariant wholesale; called
// once per run so a batch aborted mid-apply (policy contract
// violation) cannot leak marks into the scratch's next emulation.
func (s *Scratch) clearMasks() {
	clear(s.taken[:cap(s.taken)])
	clear(s.remove[:cap(s.remove)])
}

// taskRecords returns a fresh record slice presized to the largest
// emulation this scratch has seen. The slice escapes with the report,
// so it is allocated, not pooled — only the capacity knowledge is
// reused.
func (s *Scratch) taskRecords() []stats.TaskRecord {
	return make([]stats.TaskRecord, 0, s.taskCap)
}

// noteTaskCount records a finished emulation's task-record count. The
// hint tracks the workload: it grows to the largest run seen but
// decays when runs shrink, so one dense sweep does not leave every
// later small cell's escaping report slice over-allocated.
func (s *Scratch) noteTaskCount(n int) {
	switch {
	case n > s.taskCap:
		s.taskCap = n
	case n < s.taskCap/4:
		s.taskCap /= 2
	}
}

// release zeroes the pointer-bearing slots of the transient buffers
// (including the unused capacity tails) and the slab tails beyond this
// Run's length. The slab heads are deliberately left intact: they back
// the emulator's Instances() view until the next Run on this scratch
// overwrites them. Everything else must not outlive the Run, so a
// scratch parked in the sweep engine's pool never pins more than the
// last emulation's state.
func (s *Scratch) release() {
	clear(s.arrivals[:cap(s.arrivals)])
	clear(s.ready[:cap(s.ready)])
	clear(s.readyViews[:cap(s.readyViews)])
	clear(s.progs[:cap(s.progs)])
	clear(s.tasks[len(s.tasks):cap(s.tasks)])
	clear(s.instances[len(s.instances):cap(s.instances)])
	clear(s.instPtrs[len(s.instPtrs):cap(s.instPtrs)])
	s.events = s.events[:0]
	s.due = s.due[:0]
}
