// Package core is the emulation runtime: the application handler that
// instantiates framework-compatible applications, the workload manager
// that drives the emulation (injection, ready-list maintenance,
// scheduling, completion monitoring), and the per-PE resource managers
// with their idle/run/complete resource-handler handshake (Figures
// 1, 3 and 4 of the paper).
//
// The paper's implementation runs these as POSIX threads against the
// wall clock; this reproduction runs the identical state machine as a
// deterministic discrete-event loop against a virtual clock (see
// ARCHITECTURE.md for the substitution rationale). Task kernels still
// execute for real against instance memory, so validation mode
// genuinely verifies functional integration.
package core

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// Status is the resource-handler availability field the workload and
// resource managers exchange under the handler's lock in the paper.
type Status int

const (
	// StatusIdle means the PE can accept a task.
	StatusIdle Status = iota
	// StatusRun means the PE is executing its assigned task.
	StatusRun
	// StatusComplete means the task finished and awaits collection by
	// the workload manager's monitor pass.
	StatusComplete
	// StatusFaulted means the PE is offline (platform fault event): it
	// accepts no work and completes nothing until a restore event.
	StatusFaulted
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRun:
		return "run"
	case StatusComplete:
		return "complete"
	case StatusFaulted:
		return "faulted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Task is the runtime state of one DAG node inside one application
// instance: "a DAG node data structure with all the information
// necessary for scheduling, dispatch, and measurement". Tasks are
// instantiated as one contiguous slab per application instance,
// indexed by the compiled template's dense node IDs; everything
// name-, symbol- or platform-shaped lives on the shared *progNode.
type Task struct {
	App *AppInstance

	// node is the compiled template node this task instantiates; the
	// task's index in App.Tasks is the node's dense ID.
	node *progNode
	// choice indexes node.choices with the platform entry the task was
	// dispatched on; -1 until dispatch.
	choice int32

	remainingPreds int32
	readyAt        vtime.Time
	start, end     vtime.Time
	busyDur        vtime.Duration
	// executed marks that the task's kernel has run functionally. A PE
	// fault can requeue and re-dispatch a task; its (non-idempotent)
	// kernel must not run against the instance memory a second time.
	executed bool
}

// Name is the DAG node name of the task.
func (t *Task) Name() string { return t.node.name }

// Label implements sched.Task.
func (t *Task) Label() string {
	return fmt.Sprintf("%s#%d/%s", t.App.Spec.AppName, t.App.Index, t.node.name)
}

// Choices implements sched.Task; the slice is the compiled template's
// and must not be mutated.
func (t *Task) Choices() []sched.PlatformChoice { return t.node.choices }

// ReadyAt implements sched.Task.
func (t *Task) ReadyAt() vtime.Time { return t.readyAt }

// assignedKey is the platform key the task was dispatched on ("" when
// not yet dispatched).
func (t *Task) assignedKey() string {
	if t.choice < 0 {
		return ""
	}
	return t.node.choices[t.choice].Key
}

// AppInstance is one injected copy of an application archetype with
// its own initialised variable memory.
type AppInstance struct {
	Spec    *appmodel.AppSpec
	Index   int
	Arrival vtime.Time

	// Mem is the instance's variable store. It is nil in SkipExecution
	// (timing-only) runs, where no kernel ever reads it.
	Mem *appmodel.Memory
	// Tasks is the instance's task slab, indexed by the compiled
	// template's dense node IDs (Program.NodeID). The backing array is
	// owned by the emulator's Scratch and stays valid until the next
	// Run on the same Scratch.
	Tasks []Task

	prog     *Program
	injected vtime.Time
	// remaining counts unfinished tasks; the instance completes when
	// it reaches zero.
	remaining int
	done      vtime.Time
}

// Program exposes the compiled template the instance was stamped from.
func (a *AppInstance) Program() *Program { return a.prog }

// ResourceHandler is the per-PE object coordinating the workload
// manager with that PE's resource manager thread: availability status,
// PE type and id, current workload, and usage accounting.
type ResourceHandler struct {
	PE     *platform.PE
	status Status

	// idx is the handler's index in the emulator's handler table, and
	// typeIdx the configuration's dense type index of the PE — both
	// fixed at emulator construction.
	idx     int32
	typeIdx int32

	// speed is the PE's current speed factor. It starts at the type's
	// calibrated factor and moves under DVFS events; it lives here —
	// never on the shared *platform.PEType singletons, which many
	// emulators read concurrently.
	speed float64
	// faulted marks the PE offline (platform fault event); status is
	// StatusFaulted while set.
	faulted bool

	current   *Task
	busyUntil vtime.Time
	// queue is the reservation queue used by queue-capable policies
	// (the paper's future-work extension). Dequeueing advances qhead
	// instead of reslicing, so the backing array survives Run after
	// Run.
	queue []*Task
	qhead int

	busyNS int64
	tasks  int
}

// enqueue appends a task to the reservation queue.
func (h *ResourceHandler) enqueue(t *Task) { h.queue = append(h.queue, t) }

// dequeue pops the oldest reserved task; the queue must be non-empty.
func (h *ResourceHandler) dequeue() *Task {
	t := h.queue[h.qhead]
	h.queue[h.qhead] = nil // drop the slab reference as soon as it leaves the queue
	h.qhead++
	if h.qhead == len(h.queue) {
		h.queue = h.queue[:0]
		h.qhead = 0
	}
	return t
}

// queueLen reports the reservation-queue depth.
func (h *ResourceHandler) queueLen() int { return len(h.queue) - h.qhead }

// resetForRun restores the handler's start-of-emulation state while
// keeping the queue's backing array for reuse.
func (h *ResourceHandler) resetForRun() {
	h.status = StatusIdle
	h.current = nil
	h.busyUntil = 0
	h.speed = h.PE.Type.SpeedFactor
	h.faulted = false
	clear(h.queue[:cap(h.queue)])
	h.queue = h.queue[:0]
	h.qhead = 0
	h.busyNS = 0
	h.tasks = 0
}

// ID implements sched.PE.
func (h *ResourceHandler) ID() int { return h.PE.ID }

// TypeKey implements sched.PE.
func (h *ResourceHandler) TypeKey() string { return h.PE.Type.Key }

// TypeID implements sched.PE.
func (h *ResourceHandler) TypeID() int { return int(h.typeIdx) }

// SpeedFactor implements sched.PE: the PE's current (DVFS-stepped)
// speed factor.
func (h *ResourceHandler) SpeedFactor() float64 { return h.speed }

// PowerW implements sched.PE.
func (h *ResourceHandler) PowerW() float64 { return h.PE.Type.PowerW }

// Faulted implements sched.Faulty: whether the PE is offline.
func (h *ResourceHandler) Faulted() bool { return h.faulted }

// Idle implements sched.PE.
func (h *ResourceHandler) Idle() bool { return h.status == StatusIdle }

// AvailableAt implements sched.PE; it reports when the PE frees up
// including queued reservations (approximated by the running task's
// completion, as queued task costs are recomputed at dispatch).
func (h *ResourceHandler) AvailableAt() vtime.Time { return h.busyUntil }

// QueueLen implements sched.PE.
func (h *ResourceHandler) QueueLen() int { return h.queueLen() }

// Status exposes the handshake state for tests and tooling.
func (h *ResourceHandler) Status() Status { return h.status }
