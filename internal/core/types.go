// Package core is the emulation runtime: the application handler that
// instantiates framework-compatible applications, the workload manager
// that drives the emulation (injection, ready-list maintenance,
// scheduling, completion monitoring), and the per-PE resource managers
// with their idle/run/complete resource-handler handshake (Figures
// 1, 3 and 4 of the paper).
//
// The paper's implementation runs these as POSIX threads against the
// wall clock; this reproduction runs the identical state machine as a
// deterministic discrete-event loop against a virtual clock (see
// ARCHITECTURE.md for the substitution rationale). Task kernels still
// execute for real against instance memory, so validation mode
// genuinely verifies functional integration.
package core

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// Status is the resource-handler availability field the workload and
// resource managers exchange under the handler's lock in the paper.
type Status int

const (
	// StatusIdle means the PE can accept a task.
	StatusIdle Status = iota
	// StatusRun means the PE is executing its assigned task.
	StatusRun
	// StatusComplete means the task finished and awaits collection by
	// the workload manager's monitor pass.
	StatusComplete
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRun:
		return "run"
	case StatusComplete:
		return "complete"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Task is the runtime state of one DAG node inside one application
// instance: "a DAG node data structure with all the information
// necessary for scheduling, dispatch, and measurement".
type Task struct {
	App  *AppInstance
	Name string
	Spec appmodel.NodeSpec

	// choices caches the sched.PlatformChoice view.
	choices []sched.PlatformChoice
	// funcs maps platform key -> resolved kernel, bound at parse time
	// exactly like the paper's dlsym pass.
	funcs map[string]kernels.Func

	remainingPreds int
	readyAt        vtime.Time
	start, end     vtime.Time
	busyDur        vtime.Duration
	assignedKey    string
}

// Label implements sched.Task.
func (t *Task) Label() string {
	return fmt.Sprintf("%s#%d/%s", t.App.Spec.AppName, t.App.Index, t.Name)
}

// Choices implements sched.Task.
func (t *Task) Choices() []sched.PlatformChoice { return t.choices }

// ReadyAt implements sched.Task.
func (t *Task) ReadyAt() vtime.Time { return t.readyAt }

// AppInstance is one injected copy of an application archetype with
// its own initialised variable memory.
type AppInstance struct {
	Spec    *appmodel.AppSpec
	Index   int
	Arrival vtime.Time

	Mem      *appmodel.Memory
	Tasks    map[string]*Task
	injected vtime.Time
	// remaining counts unfinished tasks; the instance completes when
	// it reaches zero.
	remaining int
	done      vtime.Time
}

// ResourceHandler is the per-PE object coordinating the workload
// manager with that PE's resource manager thread: availability status,
// PE type and id, current workload, and usage accounting.
type ResourceHandler struct {
	PE     *platform.PE
	status Status

	current   *Task
	busyUntil vtime.Time
	// queue is the reservation queue used by queue-capable policies
	// (the paper's future-work extension).
	queue []*Task

	busyNS int64
	tasks  int
}

// ID implements sched.PE.
func (h *ResourceHandler) ID() int { return h.PE.ID }

// TypeKey implements sched.PE.
func (h *ResourceHandler) TypeKey() string { return h.PE.Type.Key }

// SpeedFactor implements sched.PE.
func (h *ResourceHandler) SpeedFactor() float64 { return h.PE.Type.SpeedFactor }

// PowerW implements sched.PE.
func (h *ResourceHandler) PowerW() float64 { return h.PE.Type.PowerW }

// Idle implements sched.PE.
func (h *ResourceHandler) Idle() bool { return h.status == StatusIdle }

// AvailableAt implements sched.PE; it reports when the PE frees up
// including queued reservations (approximated by the running task's
// completion, as queued task costs are recomputed at dispatch).
func (h *ResourceHandler) AvailableAt() vtime.Time { return h.busyUntil }

// QueueLen implements sched.PE.
func (h *ResourceHandler) QueueLen() int { return len(h.queue) }

// Status exposes the handshake state for tests and tooling.
func (h *ResourceHandler) Status() Status { return h.status }
