package repro

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices ARCHITECTURE.md calls out. Each benchmark reports the headline
// quantities of its experiment through b.ReportMetric so `go test
// -bench=. -benchmem` regenerates the paper's numbers alongside the
// harness cost itself. Reduced sweep sizes keep the full suite in the
// minutes range; cmd/experiments runs the full-size versions.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// BenchmarkTable1 regenerates Table I: standalone application
// execution times on 3C+2F under FRFS.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.ExecTime.Milliseconds(), r.App+"_ms")
			}
		}
	}
}

// BenchmarkTable2 regenerates the Table II injection traces.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIIGen()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, r := range res {
				total += r.Row.Total()
			}
			b.ReportMetric(float64(total), "instances")
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (5 jittered iterations per
// configuration; the paper uses 50 — run cmd/experiments for the full
// version).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9(5, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.MeanMS, p.Config+"_ms")
			}
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 over the three lowest Table II
// rates (the full five-rate sweep runs via cmd/experiments).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig10(3, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.RateJobsPerMS < 1.8 { // report the first rate column
					b.ReportMetric(p.ExecTime.Seconds(), p.Policy+"_s")
					b.ReportMetric(p.AvgOverheadUS, p.Policy+"_ovh_us")
				}
			}
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 at the sweep's endpoints.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig11([]float64{6, 18}, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.RateJobsPerMS > 17 {
					switch p.Config {
					case "4BIG+1LTL", "4BIG+3LTL", "3BIG+2LTL", "0BIG+3LTL":
						b.ReportMetric(p.ExecTime.Seconds(), p.Config+"_s")
					}
				}
			}
		}
	}
}

// BenchmarkCS4 regenerates Case Study 4 at n=512 (n=1024, the paper's
// size, runs via cmd/experiments; the speedup grows with n).
func BenchmarkCS4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CS4(512, 73)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SpeedupOpt, "speedup_opt_x")
			b.ReportMetric(r.SpeedupAccel, "speedup_accel_x")
			b.ReportMetric(float64(r.KernelsDetected), "kernels")
		}
	}
}

// --- ablation benches (ARCHITECTURE.md, design choices) ---------------------

func mixedWorkload(b *testing.B, rate float64) []core.Arrival {
	b.Helper()
	trace, err := workload.RateTrace(apps.Specs(), rate, workload.TableIIFrame)
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

// BenchmarkAblationReservationQueues quantifies the paper's
// future-work claim: per-PE work queues reduce scheduler invocations
// (and thus overlay overhead) relative to plain FRFS.
func BenchmarkAblationReservationQueues(b *testing.B) {
	cfg, err := platform.OdroidXU3(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	trace := mixedWorkload(b, 12)
	for i := 0; i < b.N; i++ {
		eP, _ := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(), Seed: 1, SkipExecution: true})
		plain, err := eP.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		eQ, _ := core.New(core.Options{Config: cfg, Policy: sched.FRFSQ{Depth: 4}, Registry: apps.Registry(), Seed: 1, SkipExecution: true})
		queued, err := eQ.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(plain.Sched.Invocations), "frfs_invocations")
			b.ReportMetric(float64(queued.Sched.Invocations), "frfsrq_invocations")
			b.ReportMetric(plain.Makespan.Seconds(), "frfs_s")
			b.ReportMetric(queued.Makespan.Seconds(), "frfsrq_s")
		}
	}
}

// BenchmarkAblationOverheadCharging compares the charged
// scheduling-overhead model against a zero-overhead idealisation: the
// gap is the paper's central claim that discrete-event simulators
// missing this overhead mispredict execution time under load.
func BenchmarkAblationOverheadCharging(b *testing.B) {
	cfg, err := platform.OdroidXU3(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Idealised copy: an overlay that charges nothing per op.
	ideal := *cfg
	zero := *cfg.Overlay
	zero.SchedOpNS = 0
	ideal.Overlay = &zero
	trace := mixedWorkload(b, 15)
	run := func(c *platform.Config) float64 {
		e, err := core.New(core.Options{
			Config: c, Policy: sched.FRFS{}, Registry: apps.Registry(),
			Seed: 1, SkipExecution: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := e.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		return rep.Makespan.Seconds()
	}
	for i := 0; i < b.N; i++ {
		charged := run(cfg)
		idealised := run(&ideal)
		if i == 0 {
			b.ReportMetric(charged, "charged_s")
			b.ReportMetric(idealised, "idealised_s")
			b.ReportMetric(charged/idealised, "overhead_inflation_x")
		}
	}
}

// BenchmarkAblationManagerPlacement isolates the accelerator
// manager-thread contention model behind Figure 9's 2C+2F anomaly:
// mean accelerator task duration with dedicated manager cores (1C+2F
// placement) vs a shared manager core (2C+2F placement).
func BenchmarkAblationManagerPlacement(b *testing.B) {
	// Several concurrent range detections keep the cores busy so FRFS
	// overflows FFT work onto the accelerators.
	arr, err := workload.Validation(apps.Specs(), map[string]int{apps.NameRangeDetection: 6})
	if err != nil {
		b.Fatal(err)
	}
	meanAccel := func(cfg *platform.Config) float64 {
		e, err := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := e.Run(arr)
		if err != nil {
			b.Fatal(err)
		}
		var sum vtime.Duration
		var n int
		for _, t := range rep.Tasks {
			if t.Platform == "fft" {
				sum += t.Duration()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return (sum / vtime.Duration(n)).Microseconds()
	}
	dedicated, _ := platform.ZCU102(1, 2)
	shared, _ := platform.ZCU102(2, 2)
	for i := 0; i < b.N; i++ {
		d := meanAccel(dedicated)
		s := meanAccel(shared)
		if i == 0 && d > 0 && s > 0 {
			b.ReportMetric(d, "dedicated_us")
			b.ReportMetric(s, "shared_us")
		}
	}
}

// BenchmarkEmulatorThroughput measures the harness itself: emulated
// tasks processed per second of host time in the timing-only mode the
// large sweeps use. One scratch serves every iteration — the
// steady-state shape of a sweep worker crunching cell after cell —
// so with compiled templates the loop allocates only the escaping
// report (BENCH_2.json records both tasks/sec and allocs/op).
func BenchmarkEmulatorThroughput(b *testing.B) {
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	trace := mixedWorkload(b, 2)
	s := core.NewScratch()
	var tasks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(), Seed: 1, SkipExecution: true, Scratch: s})
		rep, err := e.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		tasks = len(rep.Tasks)
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkEmulatorThroughputManyPE is the same measurement on the
// synthetic 32C+8F configuration — eight times the ZCU102's PE pool —
// exercising the incremental next-event tracker that keeps the
// discrete-event loop from degrading with PE count.
func BenchmarkEmulatorThroughputManyPE(b *testing.B) {
	cfg, err := platform.Synthetic(32, 8)
	if err != nil {
		b.Fatal(err)
	}
	trace := mixedWorkload(b, 8)
	s := core.NewScratch()
	var tasks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(), Seed: 1, SkipExecution: true, Scratch: s})
		rep, err := e.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		tasks = len(rep.Tasks)
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkSchedulerPathAblation isolates the indexed scheduler
// against the legacy slice path (sched.SliceOnly) on three platform
// shapes: FRFS on the uniform many-PE pool (the PR 4 headline), EFT on
// the Odroid's big.LITTLE pool — the cost-based configuration that
// used to fall back to the slice scan even under the indexed view,
// closed by PR 5's cost-class interning — and EFT on the 512-PE
// heterogeneous synthetic pool that scales the split "cpu" type far
// past any COTS board. The reports are byte-identical either way (the
// differential tests pin that); the gap is pure host-side cost:
// per-invocation view rebuilds and O(ready x PEs) scans versus
// incremental bitmaps, per-class heaps and the ready deque's prefix
// consumption.
func BenchmarkSchedulerPathAblation(b *testing.B) {
	cases := []struct {
		label  string
		config func() (*platform.Config, error)
		policy string
		rate   float64
	}{
		{"32C+8F-syn/frfs", func() (*platform.Config, error) { return platform.Synthetic(32, 8) }, "frfs", 8},
		{"4BIG+3LTL/eft", func() (*platform.Config, error) { return platform.OdroidXU3(4, 3) }, "eft", 12},
		{"256B+192L+64F-het/eft", func() (*platform.Config, error) { return platform.SyntheticHet(256, 192, 64) }, "eft", 8},
	}
	for _, c := range cases {
		cfg, err := c.config()
		if err != nil {
			b.Fatal(err)
		}
		trace := mixedWorkload(b, c.rate)
		for _, path := range []string{"indexed", "slice"} {
			b.Run("config="+c.label+"/path="+path, func(b *testing.B) {
				s := core.NewScratch()
				var tasks int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p, err := sched.New(c.policy, 1)
					if err != nil {
						b.Fatal(err)
					}
					if path == "slice" {
						p = sched.SliceOnly(p)
					}
					e, _ := core.New(core.Options{Config: cfg, Policy: p, Registry: apps.Registry(), Seed: 1, SkipExecution: true, Scratch: s})
					rep, err := e.Run(trace)
					if err != nil {
						b.Fatal(err)
					}
					tasks = len(rep.Tasks)
				}
				b.ReportMetric(float64(tasks), "tasks/op")
			})
		}
	}
}

// BenchmarkEmulatorThroughputOnlineSink measures the PR 3 streaming
// pipeline: an open-loop Poisson workload pulled through RunStream
// with the constant-memory Online sink (P² percentiles) instead of the
// full record log — the configuration saturation and long-horizon
// sweeps run in. Tasks/sec should track BenchmarkEmulatorThroughput;
// the difference is that memory no longer grows with the horizon.
func BenchmarkEmulatorThroughputOnlineSink(b *testing.B) {
	cfg, err := platform.Synthetic(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := workload.RatePoisson(2, 500*vtime.Millisecond, 29)
	if err != nil {
		b.Fatal(err)
	}
	// One spec set for every iteration: the compiled-template cache
	// keys on spec identity, so fresh specs would force recompilation.
	specs := apps.Specs()
	s := core.NewScratch()
	var tasks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := workload.NewPoissonSource(specs, ps)
		if err != nil {
			b.Fatal(err)
		}
		sink := stats.NewOnline(0)
		e, _ := core.New(core.Options{
			Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(),
			Seed: 29, SkipExecution: true, Scratch: s, Sink: sink,
		})
		if _, err := e.RunStream(src); err != nil {
			b.Fatal(err)
		}
		tasks = sink.TasksSeen
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkFullValidationRun measures a complete functional validation
// (kernels executing for real) of the paper's four-application
// workload.
func BenchmarkFullValidationRun(b *testing.B) {
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := workload.Validation(apps.Specs(), map[string]int{
		apps.NamePulseDoppler:   1,
		apps.NameRangeDetection: 1,
		apps.NameWiFiTX:         1,
		apps.NameWiFiRX:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := core.New(core.Options{Config: cfg, Policy: sched.FRFS{}, Registry: apps.Registry(), Seed: 1})
		if _, err := e.Run(arr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sweep engine benches ----------------------------------------------------

// sweepGrid builds a fixed 8-cell scheduler-study grid (2 policies x 4
// Table II rates, timing-only) used by the scaling benchmarks.
func sweepGrid(b *testing.B) []sweep.Cell[*stats.Report] {
	b.Helper()
	cfg, err := platform.ZCU102(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	specs := apps.Specs()
	var cells []sweep.Cell[*stats.Report]
	for _, policyName := range []string{"frfs", "met"} {
		for _, row := range workload.TableII[:4] {
			trace, err := workload.TableIITrace(specs, row)
			if err != nil {
				b.Fatal(err)
			}
			policy, err := sched.New(policyName, 7)
			if err != nil {
				b.Fatal(err)
			}
			cells = append(cells, sweep.EmulationCell(
				fmt.Sprintf("%s@%.2f", policyName, row.RateJobsPerMS),
				sweep.Emulation{
					Config: cfg, Policy: policy, Registry: apps.Registry(),
					Arrivals: trace, Seed: 7, SkipExecution: true,
				}))
		}
	}
	return cells
}

// BenchmarkSweepWorkers runs the same grid at 1, 2 and 4 workers so
// `go test -bench=SweepWorkers` shows the wall-clock scaling of the
// sweep engine directly (on a multi-core host, 4 workers should be
// >=2x faster than 1; on a single-core host the curves collapse).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cells := sweepGrid(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(cells, sweep.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepSpeedup reports the 4-worker speedup over the
// sequential sweep as a metric (speedup_4w_x), measured inside one
// benchmark iteration so the two runs see identical cells.
func BenchmarkSweepSpeedup(b *testing.B) {
	cells := sweepGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := sweep.Run(cells, sweep.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		seq := time.Since(t0)
		t0 = time.Now()
		if _, err := sweep.Run(cells, sweep.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0)
		if i == 0 {
			b.ReportMetric(seq.Seconds()*1e3, "seq_ms")
			b.ReportMetric(par.Seconds()*1e3, "par4_ms")
			b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_4w_x")
		}
	}
}
