package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
)

func TestRunValidationMode(t *testing.T) {
	err := run([]string{
		"-platform", "zcu102", "-cores", "2", "-ffts", "1",
		"-apps", "range_detection=1,wifi_tx=1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPerformanceMode(t *testing.T) {
	err := run([]string{
		"-platform", "odroid", "-big", "2", "-little", "1",
		"-mode", "performance", "-rate", "2", "-frame", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMeasuredTimingAndTasks(t *testing.T) {
	err := run([]string{
		"-cores", "1", "-ffts", "0",
		"-apps", "wifi_tx=1", "-timing", "measured", "-tasks",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	if err := os.WriteFile(path, []byte(`{"platform":"zcu102","cores":1,"ffts":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path, "-apps", "range_detection=1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAppJSON(t *testing.T) {
	dir := t.TempDir()
	spec := apps.WiFiTX(apps.DefaultWiFiParams())
	spec.AppName = "wifi_tx_external"
	data, err := spec.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "app.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-cores", "1", "-ffts", "0",
		"-app-json", path, "-apps", "wifi_tx_external=2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad platform", []string{"-platform", "riscv"}, "unknown platform"},
		{"bad mode", []string{"-mode", "chaos"}, "unknown mode"},
		{"bad sched", []string{"-sched", "heft"}, "unknown policy"},
		{"bad timing", []string{"-timing", "psychic"}, "unknown timing"},
		{"bad app count", []string{"-apps", "wifi_tx=lots"}, "bad count"},
		{"bad app format", []string{"-apps", "wifi_tx"}, "bad app spec"},
		{"empty workload", []string{"-apps", ""}, "empty workload"},
		{"unknown app", []string{"-apps", "ghost=1"}, "not found"},
		{"missing config", []string{"-config", "/nope/x.json"}, "reading config"},
		{"zero-PE flags", []string{"-platform", "odroid", "-big", "0", "-little", "0"}, "at least one PE"},
		{"het without cores", []string{"-platform", "synthetic-het", "-big", "0", "-little", "0", "-ffts", "2"}, "at least one CPU core"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

// TestRunWithEvents drives a dynamic run through the CLI: a schedule
// file faulting and restoring a PE plus a DVFS step and a power cap,
// on a platform small enough that every event lands mid-run.
func TestRunWithEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.json")
	doc := `[{"at_ns": 5000, "kind": "fault", "pe": 1},
	 {"at_ns": 40000, "kind": "restore", "pe": 1},
	 {"at_ns": 10000, "kind": "set-speed", "pe": 0, "speed": 1.6},
	 {"at_ns": 20000, "kind": "power-cap", "watts": 1.0}]`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-platform", "synthetic", "-cores", "2", "-ffts", "1",
		"-sched", "eft-power", "-events", path,
		"-apps", "range_detection=1,wifi_tx=1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunEventsErrors pins the -events failure modes: unreadable file,
// malformed document, and a schedule targeting a PE the configuration
// does not have.
func TestRunEventsErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"kind":"fault"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outOfRange := filepath.Join(dir, "range.json")
	if err := os.WriteFile(outOfRange, []byte(`[{"at_ns":1,"kind":"fault","pe":99}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing file", []string{"-events", "/nope/events.json"}, "no such file"},
		{"malformed", []string{"-events", bad}, "decoding schedule"},
		{"out of range", []string{"-cores", "2", "-ffts", "0", "-events", outOfRange}, "targets PE 99"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

// TestRunWithDegenerateConfigFile pins the JSON edge: a configuration
// document describing zero PEs (the Odroid document with both counts
// omitted) must fail with the platform package's descriptive error
// instead of reaching the emulator as a stuck run.
func TestRunWithDegenerateConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	if err := os.WriteFile(path, []byte(`{"platform":"odroid-xu3"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-config", path, "-apps", "wifi_tx=1"})
	if err == nil || !strings.Contains(err.Error(), "at least one PE") {
		t.Fatalf("degenerate config file: want 'at least one PE' error, got %v", err)
	}
}

// TestRunHetPlatform drives a small heterogeneous synthetic pool (two
// cost classes under the "cpu" key plus accelerators) end to end
// through the CLI flags and the JSON document form.
func TestRunHetPlatform(t *testing.T) {
	err := run([]string{
		"-platform", "synthetic-het", "-big", "2", "-little", "2", "-ffts", "1",
		"-sched", "eft", "-apps", "wifi_tx=1,wifi_rx=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	if err := os.WriteFile(path, []byte(`{"platform":"synthetic-het","big":2,"little":1,"ffts":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path, "-sched", "eft-power", "-apps", "range_detection=1"}); err != nil {
		t.Fatal(err)
	}
}
