// Command emulate runs one emulation of a DSSoC configuration against
// a workload, printing the scheduling statistics the framework
// collects before termination.
//
// Validation mode injects all instances at t=0 and runs to completion;
// performance mode injects applications periodically over a time frame
// (the paper's two operation modes).
//
// Examples:
//
//	emulate -platform zcu102 -cores 3 -ffts 2 -sched frfs \
//	        -apps range_detection=1,wifi_tx=2
//	emulate -platform odroid -big 3 -little 2 -mode performance \
//	        -rate 8 -frame 100ms -sched frfs
//	emulate -config hw.json -apps pulse_doppler=1 -timing measured
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/appmodel"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/platevent"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "emulate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("emulate", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "hardware configuration JSON file (overrides -platform/-cores/...)")
		platName   = fs.String("platform", "zcu102", "platform: zcu102, odroid, synthetic or synthetic-het")
		cores      = fs.Int("cores", 3, "ZCU102/synthetic CPU cores")
		ffts       = fs.Int("ffts", 2, "ZCU102/synthetic FFT accelerators")
		big        = fs.Int("big", 3, "Odroid big cores")
		little     = fs.Int("little", 2, "Odroid LITTLE cores")
		schedName  = fs.String("sched", "frfs", "scheduling policy: "+strings.Join(sched.Names(), ", "))
		mode       = fs.String("mode", "validation", "operation mode: validation or performance")
		appsFlag   = fs.String("apps", "range_detection=1,pulse_doppler=1,wifi_tx=1,wifi_rx=1",
			"validation-mode workload: app=count,...")
		rate     = fs.Float64("rate", 4, "performance-mode injection rate (jobs/ms)")
		frame    = fs.Duration("frame", 100_000_000, "performance-mode injection time frame")
		seed     = fs.Int64("seed", 1, "jitter seed")
		sigma    = fs.Float64("jitter", 0, "log-normal timing jitter sigma (0 = deterministic)")
		timing   = fs.String("timing", "modeled", "task timing: modeled or measured")
		appJSON  = fs.String("app-json", "", "additional application JSON file to load")
		events   = fs.String("events", "", "dynamic-platform event schedule JSON file (faults, DVFS, power caps)")
		tasks    = fs.Bool("tasks", false, "print the per-task trace")
		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON of the run here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := buildConfig(*configPath, *platName, *cores, *ffts, *big, *little)
	if err != nil {
		return err
	}
	policy, err := sched.New(*schedName, *seed)
	if err != nil {
		return err
	}

	specs := apps.Specs()
	if *appJSON != "" {
		data, err := os.ReadFile(*appJSON)
		if err != nil {
			return err
		}
		spec, err := appmodel.ParseJSON(data)
		if err != nil {
			return err
		}
		specs[spec.AppName] = spec
	}

	var arrivals []core.Arrival
	switch *mode {
	case "validation":
		counts, err := parseAppCounts(*appsFlag)
		if err != nil {
			return err
		}
		arrivals, err = workload.Validation(specs, counts)
		if err != nil {
			return err
		}
	case "performance":
		arrivals, err = workload.RateTrace(specs, *rate, vtime.FromStd(*frame))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (validation or performance)", *mode)
	}

	opts := core.Options{
		Config:      cfg,
		Policy:      policy,
		Registry:    apps.Registry(),
		Seed:        *seed,
		JitterSigma: *sigma,
	}
	if *events != "" {
		data, err := os.ReadFile(*events)
		if err != nil {
			return err
		}
		schedule, err := platevent.ParseJSON(data)
		if err != nil {
			return err
		}
		opts.Events = schedule
	}
	switch *timing {
	case "modeled":
	case "measured":
		opts.Timing = core.Measured
	default:
		return fmt.Errorf("unknown timing %q (modeled or measured)", *timing)
	}
	e, err := core.New(opts)
	if err != nil {
		return err
	}
	fmt.Printf("emulating %d application instances on %s under %s (%s mode)\n",
		len(arrivals), cfg.Name, policy.Name(), *mode)
	report, err := e.Run(arrivals)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	if report.PlatEvents > 0 {
		fmt.Printf("platform events applied: %d (%d task requeues)\n", report.PlatEvents, report.Requeues)
	}
	fmt.Println("mean response time per application:")
	for app, d := range report.AppResponse() {
		fmt.Printf("  %-18s %v\n", app, d)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := report.WriteTraceEvents(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
	if *tasks {
		fmt.Println("task trace:")
		for _, r := range report.Tasks {
			fmt.Printf("  %8v..%-8v %-10s %-24s inst %d on %s\n",
				r.Start, r.End, r.Node, r.App, r.Instance, r.PELabel)
		}
	}
	return nil
}

func buildConfig(path, plat string, cores, ffts, big, little int) (*platform.Config, error) {
	if path != "" {
		return platform.LoadConfigFile(path)
	}
	switch strings.ToLower(plat) {
	case "zcu102":
		return platform.ZCU102(cores, ffts)
	case "odroid", "odroid-xu3", "xu3":
		return platform.OdroidXU3(big, little)
	case "synthetic", "syn":
		return platform.Synthetic(cores, ffts)
	case "synthetic-het", "syn-het", "het":
		return platform.SyntheticHet(big, little, ffts)
	default:
		return nil, fmt.Errorf("unknown platform %q", plat)
	}
}

func parseAppCounts(s string) (map[string]int, error) {
	counts := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad app spec %q (want app=count)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad count in %q: %w", part, err)
		}
		counts[strings.TrimSpace(kv[0])] = n
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("empty workload")
	}
	return counts, nil
}
