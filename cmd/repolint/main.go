// Command repolint runs the repo's determinism & ownership contract
// analyzers (internal/lint) over the given packages and reports every
// finding not covered by a reasoned //repolint:allow comment.
//
//	repolint [-tests=false] [-json] [-github] [-sharing-report] [packages...]
//
// Default packages: ./... . Output modes:
//
//	(default)        one finding per line, editor-clickable
//	-json            machine-readable array (file/line/analyzer/message,
//	                 plus the suppressed findings with their allow
//	                 reasons, so audits see what the allows hold back)
//	-github          GitHub Actions workflow commands (::error ...) so
//	                 findings land as inline annotations on the PR diff
//	-sharing-report  run only the sharedmut inventory and print the
//	                 PDES sharing baseline markdown (PDES_SHARING.md)
//
// Exit status: 0 clean, 1 findings, 2 load/driver error. `make lint`
// runs it over ./... as part of `make check` and CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (includes suppressed findings with reasons)")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	sharing := flag.Bool("sharing-report", false, "print the PDES sharing baseline (sharedmut inventory) and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-tests=false] [-json] [-github] [-sharing-report] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nsuppress a deliberate finding with //repolint:allow <analyzer> <reason>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *sharing {
		// The inventory comes from facts, not diagnostics, so the
		// report is built from a sharedmut-only pass over the module
		// without test files (test-only helpers are not part of the
		// sharing surface a partitioned loop would see).
		facts := analysis.NewFactStore()
		if _, err := lint.Run(patterns, lint.Options{
			Tests:     false,
			Analyzers: []*analysis.Analyzer{lint.SharedMut},
			Facts:     facts,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(lint.SharingReport(facts))
		return
	}

	findings, err := lint.Run(patterns, lint.Options{Tests: *tests, KeepSuppressed: *jsonOut})
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil {
				return r
			}
		}
		return name
	}

	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
	}

	switch {
	case *jsonOut:
		type finding struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Column     int    `json:"column"`
			Analyzer   string `json:"analyzer"`
			Category   string `json:"category,omitempty"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
			Reason     string `json:"reason,omitempty"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{
				File: rel(f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
				Analyzer: f.Analyzer, Category: f.Category, Message: f.Message,
				Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(2)
		}
	case *github:
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			// Workflow command: newlines and the %-escapes per the
			// Actions annotation grammar.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(f.Message)
			fmt.Printf("::error file=%s,line=%d,col=%d,title=repolint/%s::%s\n",
				rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, msg)
		}
	default:
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			f.Pos.Filename = rel(f.Pos.Filename)
			fmt.Println(f)
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", live)
		os.Exit(1)
	}
}
