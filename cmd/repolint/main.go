// Command repolint runs the repo's determinism & ownership contract
// analyzers (internal/lint) over the given packages and reports every
// finding not covered by a reasoned //repolint:allow comment.
//
//	repolint [-tests=false] [packages...]   (default ./...)
//
// Exit status: 0 clean, 1 findings, 2 load/driver error. `make lint`
// runs it over ./... as part of `make check` and CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-tests=false] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nsuppress a deliberate finding with //repolint:allow <analyzer> <reason>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(patterns, lint.Options{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
