package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, runs a
// sweep through it, sends SIGTERM, and requires a clean (exit 0) drain.
func TestRunServesAndDrains(t *testing.T) {
	state := t.TempDir()
	shutdown := make(chan os.Signal, 1)
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var logbuf bytes.Buffer
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-state", state, "-snapshot-every", "-1ms"},
			&logbuf, shutdown, func(a string) { addrc <- a },
		)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	body := `{"tenant":"t","platform":{"name":"synthetic","cores":8,"ffts":2},
	          "policies":["frfs"],"rates_jobs_per_ms":[2],"frame_ms":20,
	          "seeds":[1],"skip_execution":true}`
	resp, err := http.Post("http://"+addr+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(stream), `"type":"done"`) {
		t.Fatalf("sweep via daemon: status %d, stream %q", resp.StatusCode, stream)
	}

	shutdown <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if !strings.Contains(logbuf.String(), "drained, exiting") {
		t.Fatalf("log: %s", logbuf.String())
	}

	// Ledger survived in the state dir for the next process.
	if _, err := os.Stat(state + "/ledger.ndjson"); err != nil {
		t.Fatalf("ledger missing after drain: %v", err)
	}
}

func TestRunRequiresState(t *testing.T) {
	err := run([]string{"-addr", "127.0.0.1:0"}, io.Discard, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-state") {
		t.Fatalf("missing -state accepted: %v", err)
	}
}
