// Command emulated is the long-lived emulation service: it keeps the
// process-wide compiled-program cache warm across requests and runs
// sweep grids submitted over HTTP, streaming NDJSON events back.
//
// Robustness contract (see ARCHITECTURE.md "Emulation as a service"):
//
//   - Admission control: per-tenant token buckets plus a bounded
//     global queue; past the bound the daemon answers 429 with a
//     computed Retry-After instead of buffering without limit.
//   - Crash safety: every finished cell is fsynced to an append-only
//     content-hashed ledger before its bytes reach the client, so a
//     kill -9 loses at most the cells still in flight and a restarted
//     daemon resumes without recomputing anything it journaled.
//   - Graceful shutdown: SIGTERM (or SIGINT) drains — in-flight cells
//     finish, interrupted sweeps get an explicit "incomplete" event,
//     new work is refused with 503 — then the process exits 0.
//
// Example:
//
//	emulated -addr :8080 -state /var/lib/emulated &
//	curl -N localhost:8080/v1/sweeps -d '{
//	  "tenant": "alice",
//	  "platform": {"name": "zcu102", "cores": 3, "ffts": 2},
//	  "policies": ["frfs", "eft"],
//	  "rates_jobs_per_ms": [2, 4, 8],
//	  "seeds": [1, 2, 3]
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stderr, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "emulated:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a shutdown signal arrives and
// the drain completes. ready, if non-nil, is called with the bound
// listen address once the server accepts connections (tests use
// ":0" and need the resolved port).
func run(args []string, logw io.Writer, shutdown <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("emulated", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address")
		state       = fs.String("state", "", "state directory for the cell ledger (required)")
		workers     = fs.Int("workers", 0, "sweep worker goroutines per request (0 = GOMAXPROCS)")
		maxActive   = fs.Int("max-active", 2, "sweeps running concurrently")
		queueDepth  = fs.Int("queue-depth", 4, "sweeps waiting beyond the active set before 429s start")
		tenantRate  = fs.Float64("tenant-rate", 1, "per-tenant sustained sweeps/sec")
		tenantBurst = fs.Float64("tenant-burst", 4, "per-tenant burst size")
		snapEvery   = fs.Duration("snapshot-every", 250*time.Millisecond, "mid-sweep stats snapshot interval (<0 disables)")
		reqTimeout  = fs.Duration("timeout", 5*time.Minute, "default per-request deadline")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight cells")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return errors.New("-state is required (the ledger makes the daemon crash-safe; there is no stateless mode)")
	}
	if err := os.MkdirAll(*state, 0o755); err != nil {
		return err
	}

	s, err := serve.New(serve.Options{
		StateDir: *state,
		Workers:  *workers,
		Admission: serve.AdmissionConfig{
			MaxActive:   *maxActive,
			QueueDepth:  *queueDepth,
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
		},
		SnapshotEvery:  *snapEvery,
		DefaultTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(logw, "emulated: listening on %s, state in %s\n", ln.Addr(), *state)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case sig := <-shutdown:
		fmt.Fprintf(logw, "emulated: %v, draining (grace %v)\n", sig, *drainGrace)
	}

	// Drain order matters: first stop the sweeps (in-flight cells
	// finish and are journaled, interrupted streams get their
	// "incomplete" terminal event), then close the listener and wait
	// for response bodies to flush.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		// Exceeding the grace period is a degraded exit, not a crash:
		// the ledger already holds every finished cell.
		fmt.Fprintf(logw, "emulated: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(logw, "emulated: drained, exiting")
	return nil
}
