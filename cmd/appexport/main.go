// Command appexport writes the built-in application library to JSON
// DAG files, one per application — the on-disk form a framework user
// edits, recombines ("define a new application simply by linking
// [kernels] together in a novel way"), or feeds back through
// cmd/emulate with -app-json.
//
//	appexport -dir ./appdefs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/apps"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "appexport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("appexport", flag.ContinueOnError)
	dir := fs.String("dir", "appdefs", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	specs := apps.Specs()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := specs[name].MarshalIndentJSON()
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d nodes, %d variables, %d bytes)\n",
			path, specs[name].TaskCount(), len(specs[name].Variables), len(data))
	}
	return nil
}
