package main

import (
	"testing"

	"repro/internal/appmodel"
)

func TestExportAndReload(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir}); err != nil {
		t.Fatal(err)
	}
	specs, err := appmodel.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"range_detection": 6,
		"pulse_doppler":   770,
		"wifi_tx":         7,
		"wifi_rx":         9,
	}
	if len(specs) != len(want) {
		t.Fatalf("exported %d apps", len(specs))
	}
	for name, tasks := range want {
		spec, ok := specs[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if spec.TaskCount() != tasks {
			t.Fatalf("%s: %d tasks after reload", name, spec.TaskCount())
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExportBadDir(t *testing.T) {
	if err := run([]string{"-dir", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("unwritable directory accepted")
	}
}
