package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/appmodel"
)

func TestBuiltinDemoConversion(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rd.json")
	if err := run([]string{"-n", "128", "-lag", "17", "-o", out, "-recognize"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := appmodel.ParseJSON(data)
	if err != nil {
		t.Fatalf("generated JSON invalid: %v", err)
	}
	// 6 kernels + 2 non-kernel glue groups.
	if spec.TaskCount() != 8 {
		t.Fatalf("generated DAG has %d nodes, want 8", spec.TaskCount())
	}
	// Recognition redirected transforms to the accelerator namespace.
	accel := 0
	for _, node := range spec.DAG {
		if _, ok := node.PlatformFor("fft"); ok {
			accel++
		}
	}
	if accel != 3 {
		t.Fatalf("%d accelerator-capable nodes, want 3", accel)
	}
}

func TestExternalSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.c")
	program := `
float acc;
float main() {
  float i;
  for (i = 0; i < 100; i = i + 1) { acc = acc + i; }
  return acc;
}`
	if err := os.WriteFile(src, []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-src", src, "-name", "summer"}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceErrors(t *testing.T) {
	if err := run([]string{"-src", "/nope/missing.c"}); err == nil {
		t.Fatal("missing source accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte("float main() { return }"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-src", bad})
	if err == nil || !strings.Contains(err.Error(), "front end") {
		t.Fatalf("want front-end error, got %v", err)
	}
}
