// Command autodag drives the automatic application conversion
// toolchain (paper Section II-E / Case Study 4): it compiles an
// unlabeled MiniC program, traces it, detects kernels, outlines them
// into a framework-compatible JSON DAG, and optionally applies
// hash-based kernel recognition to redirect recognised transforms to
// optimised and accelerator implementations.
//
// With no -src flag it converts the built-in monolithic range
// detection demo.
//
// Examples:
//
//	autodag -n 1024 -o range_detection_auto.json -recognize
//	autodag -src myapp.c -o myapp.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/outliner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autodag:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autodag", flag.ContinueOnError)
	var (
		srcPath   = fs.String("src", "", "MiniC source file (default: built-in monolithic range detection)")
		n         = fs.Int("n", 1024, "transform length for the built-in demo")
		lag       = fs.Int("lag", 137, "target lag for the built-in demo")
		out       = fs.String("o", "", "write the generated DAG JSON here (default stdout summary only)")
		recognize = fs.Bool("recognize", false, "apply hash-based kernel recognition")
		appName   = fs.String("name", "auto_app", "AppName for the generated DAG")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	if *srcPath != "" {
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		src = outliner.MonolithicRangeDetection(*n, *lag)
		fmt.Printf("converting built-in monolithic range detection (n=%d, lag=%d)\n", *n, *lag)
	}

	mod, err := minic.Compile(src, *appName)
	if err != nil {
		return fmt.Errorf("front end: %w", err)
	}
	fmt.Printf("compiled: %d functions, %d globals\n", len(mod.Funcs), len(mod.Globals))

	res, err := outliner.Convert(mod, outliner.Options{MaxSteps: 4_000_000_000})
	if err != nil {
		return fmt.Errorf("conversion: %w", err)
	}
	fmt.Printf("traced %d dynamic IR instructions\n", res.TotalDynInstrs)
	hot := 0
	for _, k := range res.Kernels {
		kind := "non-kernel"
		if k.Hot {
			kind = "KERNEL"
			hot++
		}
		fmt.Printf("  %-10s %-10s dyn=%-12d globals=%d  %v\n",
			k.Name, kind, k.DynInstrs, len(k.Globals), k.Hints)
	}
	fmt.Printf("detected %d kernels among %d groups\n", hot, len(res.Kernels))

	reg := kernels.NewRegistry()
	spec, recs, err := outliner.GenerateSpec(res, outliner.SpecOptions{
		AppName:   *appName,
		Registry:  reg,
		Recognize: *recognize,
	})
	if err != nil {
		return fmt.Errorf("DAG generation: %w", err)
	}
	for _, r := range recs {
		fmt.Printf("recognised %s as %s (n=%d): platforms redirected to optimised + accelerator\n",
			r.Node, r.Kind, r.N)
	}

	if *out != "" {
		data, err := spec.MarshalIndentJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d nodes, %d variables)\n", *out, spec.TaskCount(), len(spec.Variables))
	} else {
		fmt.Printf("generated DAG: %d nodes, %d variables (use -o to write JSON)\n",
			spec.TaskCount(), len(spec.Variables))
	}
	return nil
}
