package main

import "testing"

func TestTable2Mode(t *testing.T) {
	if err := run([]string{"-table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRateMode(t *testing.T) {
	if err := run([]string{"-rate", "5", "-frame", "20ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-rate", "2", "-frame", "5ms", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRateModeRejectsZero(t *testing.T) {
	if err := run([]string{"-rate", "0"}); err == nil {
		t.Fatal("zero rate accepted")
	}
}
