package main

import "testing"

func TestTable2Mode(t *testing.T) {
	if err := run([]string{"-table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRateMode(t *testing.T) {
	if err := run([]string{"-rate", "5", "-frame", "20ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-rate", "2", "-frame", "5ms", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRateModeRejectsZero(t *testing.T) {
	if err := run([]string{"-rate", "0"}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestOpenLoopModes(t *testing.T) {
	if err := run([]string{"-mode", "poisson", "-rate", "6", "-frame", "50ms", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mode", "bursty", "-rate", "6", "-frame", "50ms", "-burst-on", "1", "-burst-off", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mode", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-mode", "poisson", "-rate", "0"}); err == nil {
		t.Fatal("zero poisson rate accepted")
	}
	if err := run([]string{"-mode", "bursty", "-burst-on", "0"}); err == nil {
		t.Fatal("zero on-dwell accepted")
	}
}
