// Command workloadgen generates and inspects performance-mode
// injection traces: the Table II traces of the paper, or a trace at an
// arbitrary rate with the paper's application mix.
//
// Examples:
//
//	workloadgen -table2            # regenerate all Table II rows
//	workloadgen -rate 8 -frame 100ms -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	var (
		table2  = fs.Bool("table2", false, "regenerate the paper's Table II")
		rate    = fs.Float64("rate", 4, "injection rate (jobs/ms)")
		frame   = fs.Duration("frame", 100_000_000, "injection time frame")
		verbose = fs.Bool("v", false, "print every arrival")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := apps.Specs()

	if *table2 {
		fmt.Printf("%-16s %14s %16s %9s %9s %9s\n",
			"Rate (jobs/ms)", "PulseDoppler", "RangeDetection", "WiFiTX", "WiFiRX", "Total")
		for _, row := range workload.TableII {
			trace, err := workload.TableIITrace(specs, row)
			if err != nil {
				return err
			}
			c := workload.Counts(trace)
			fmt.Printf("%-16.2f %14d %16d %9d %9d %9d\n",
				workload.RateJobsPerMS(trace, workload.TableIIFrame),
				c[apps.NamePulseDoppler], c[apps.NameRangeDetection],
				c[apps.NameWiFiTX], c[apps.NameWiFiRX], len(trace))
		}
		return nil
	}

	trace, err := workload.RateTrace(specs, *rate, vtime.FromStd(*frame))
	if err != nil {
		return err
	}
	c := workload.Counts(trace)
	fmt.Printf("trace: %d instances over %v (realised rate %.2f jobs/ms)\n",
		len(trace), vtime.FromStd(*frame), workload.RateJobsPerMS(trace, vtime.FromStd(*frame)))
	for app, n := range c {
		fmt.Printf("  %-18s %d\n", app, n)
	}
	if *verbose {
		for i, a := range trace {
			fmt.Printf("  %5d  t=%-10v %s\n", i, a.At, a.Spec.AppName)
		}
	}
	return nil
}
