// Command workloadgen generates and inspects injection traces: the
// Table II traces of the paper, a periodic trace at an arbitrary rate
// with the paper's application mix, or the open-loop arrival processes
// (Poisson and bursty on-off) used by the saturation study.
//
// Examples:
//
//	workloadgen -table2                          # regenerate all Table II rows
//	workloadgen -rate 8 -frame 100ms -v          # periodic, paper mix
//	workloadgen -mode poisson -rate 8 -seed 29   # open-loop Poisson
//	workloadgen -mode bursty -rate 8 -burst-on 2 -burst-off 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	var (
		table2   = fs.Bool("table2", false, "regenerate the paper's Table II")
		mode     = fs.String("mode", "periodic", "arrival process: periodic, poisson, bursty")
		rate     = fs.Float64("rate", 4, "average injection rate (jobs/ms)")
		frame    = fs.Duration("frame", 100_000_000, "injection time frame")
		seed     = fs.Int64("seed", 0, "seed for the open-loop draws (per-app sub-seeded)")
		burstOn  = fs.Float64("burst-on", 2, "bursty mode: mean on-state dwell (ms)")
		burstOff = fs.Float64("burst-off", 8, "bursty mode: mean off-state dwell (ms)")
		verbose  = fs.Bool("v", false, "print every arrival")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := apps.Specs()

	if *table2 {
		fmt.Printf("%-16s %14s %16s %9s %9s %9s\n",
			"Rate (jobs/ms)", "PulseDoppler", "RangeDetection", "WiFiTX", "WiFiRX", "Total")
		for _, row := range workload.TableII {
			trace, err := workload.TableIITrace(specs, row)
			if err != nil {
				return err
			}
			c := workload.Counts(trace)
			fmt.Printf("%-16.2f %14d %16d %9d %9d %9d\n",
				workload.RateJobsPerMS(trace, workload.TableIIFrame),
				c[apps.NamePulseDoppler], c[apps.NameRangeDetection],
				c[apps.NameWiFiTX], c[apps.NameWiFiRX], len(trace))
		}
		return nil
	}

	vframe := vtime.FromStd(*frame)
	var trace []core.Arrival
	var err error
	switch *mode {
	case "periodic":
		trace, err = workload.RateTrace(specs, *rate, vframe)
	case "poisson":
		var ps workload.PoissonSpec
		if ps, err = workload.RatePoisson(*rate, vframe, *seed); err == nil {
			trace, err = workload.Poisson(specs, ps)
		}
	case "bursty":
		var bs workload.BurstySpec
		if bs, err = workload.RateBursty(*rate, vframe, *seed, *burstOn, *burstOff); err == nil {
			trace, err = workload.Bursty(specs, bs)
		}
	default:
		return fmt.Errorf("unknown mode %q (periodic, poisson, bursty)", *mode)
	}
	if err != nil {
		return err
	}
	c := workload.Counts(trace)
	fmt.Printf("%s trace: %d instances over %v (realised rate %.2f jobs/ms)\n",
		*mode, len(trace), vframe, workload.RateJobsPerMS(trace, vframe))
	names := make([]string, 0, len(c))
	for app := range c {
		names = append(names, app)
	}
	sort.Strings(names)
	for _, app := range names {
		fmt.Printf("  %-18s %d\n", app, c[app])
	}
	if *verbose {
		for i, a := range trace {
			fmt.Printf("  %5d  t=%-10v %s\n", i, a.At, a.Spec.AppName)
		}
	}
	return nil
}
