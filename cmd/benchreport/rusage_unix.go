//go:build unix

package main

import (
	"os"
	"runtime"
	"syscall"
)

// rusageOf extracts the child's resource usage from its exit state:
// user/system CPU seconds and peak resident set size in KiB. ok is
// false when the platform delivered no rusage.
func rusageOf(ps *os.ProcessState) (userSec, sysSec float64, maxRSSKB int64, ok bool) {
	ru, isRusage := ps.SysUsage().(*syscall.Rusage)
	if !isRusage {
		return 0, 0, 0, false
	}
	userSec = float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6
	sysSec = float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
	maxRSSKB = ru.Maxrss
	if runtime.GOOS == "darwin" {
		maxRSSKB /= 1024 // darwin reports ru_maxrss in bytes, linux in KiB
	}
	return userSec, sysSec, maxRSSKB, true
}
