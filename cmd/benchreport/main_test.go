package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEmulatorThroughput 	      20	   6705221 ns/op	      8172 tasks/op	 1063324 B/op	      48 allocs/op
BenchmarkSweepWorkers/workers=1-8 	       5	  52000000 ns/op	  9000000 B/op	   1200 allocs/op
BenchmarkSweepSpeedup 	       2	 100000000 ns/op	       2.1 speedup_4w_x
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEmulatorThroughput" || b.Iter != 20 {
		t.Fatalf("header wrong: %+v", b)
	}
	if b.NsOp != 6705221 || b.TasksOp != 8172 || b.BytesOp != 1063324 || b.AllocsOp != 48 {
		t.Fatalf("values wrong: %+v", b)
	}
	wantRate := 8172 / (6705221e-9)
	if diff := b.TasksPerSec - wantRate; diff > 1 || diff < -1 {
		t.Fatalf("tasks_per_sec = %f, want %f", b.TasksPerSec, wantRate)
	}
	// Sub-benchmark name keeps its path but drops the -8 suffix.
	if rep.Benchmarks[1].Name != "BenchmarkSweepWorkers/workers=1" {
		t.Fatalf("sub-bench name = %q", rep.Benchmarks[1].Name)
	}
	if rep.Benchmarks[1].TasksPerSec != 0 {
		t.Fatal("tasks_per_sec derived without tasks/op")
	}
	// Custom metric columns survive verbatim.
	if rep.Benchmarks[2].Metrics["speedup_4w_x"] != 2.1 {
		t.Fatalf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("phantom benchmarks: %+v", rep.Benchmarks)
	}
}

const sweepSample = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEmulatorThroughput-1 	      20	   6705221 ns/op	      8172 tasks/op
BenchmarkSweepWorkers/workers=1-1 	       5	  52000000 ns/op
BenchmarkSweepWorkers/workers=2-1 	       5	  50000000 ns/op
BenchmarkSweepWorkers/workers=4-1 	       5	  53000000 ns/op
PASS
`

func TestGoMaxProcsAndSweepSpeedups(t *testing.T) {
	rep, err := parse(strings.NewReader(sweepSample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs != 1 || !rep.SingleCPUHost {
		t.Fatalf("host provenance wrong: gomaxprocs=%d single_cpu=%v", rep.GoMaxProcs, rep.SingleCPUHost)
	}
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	if s := byName["BenchmarkSweepWorkers/workers=1"].Metrics["speedup_vs_1"]; s != 1.0 {
		t.Fatalf("workers=1 speedup_vs_1 = %f, want 1.0", s)
	}
	if s := byName["BenchmarkSweepWorkers/workers=2"].Metrics["speedup_vs_1"]; s != 52.0/50.0 {
		t.Fatalf("workers=2 speedup_vs_1 = %f", s)
	}
	if s := byName["BenchmarkSweepWorkers/workers=4"].Metrics["speedup_vs_1"]; s != 52.0/53.0 {
		t.Fatalf("workers=4 speedup_vs_1 = %f", s)
	}
	// The throughput bench is untouched by the sweep derivation.
	if _, ok := byName["BenchmarkEmulatorThroughput"].Metrics["speedup_vs_1"]; ok {
		t.Fatal("speedup_vs_1 leaked onto a non-sweep bench")
	}
	// An 8-proc record is not flagged single-CPU.
	rep8, err := parse(strings.NewReader(strings.ReplaceAll(sweepSample, "-1 ", "-8 ")))
	if err != nil {
		t.Fatal(err)
	}
	if rep8.GoMaxProcs != 8 || rep8.SingleCPUHost {
		t.Fatalf("8-proc provenance wrong: %d %v", rep8.GoMaxProcs, rep8.SingleCPUHost)
	}
	// go test omits the suffix entirely at GOMAXPROCS=1, so a record
	// with bare names is a single-CPU record.
	repBare, err := parse(strings.NewReader(strings.ReplaceAll(sweepSample, "-1 ", " ")))
	if err != nil {
		t.Fatal(err)
	}
	if repBare.GoMaxProcs != 1 || !repBare.SingleCPUHost {
		t.Fatalf("bare-name provenance wrong: %d %v", repBare.GoMaxProcs, repBare.SingleCPUHost)
	}
}

const multiTrialSample = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEmulatorThroughput-8 	      10	   1000000 ns/op	      1000 tasks/op	 500000 B/op	      40 allocs/op
BenchmarkSweepWorkers/workers=1-8 	       5	  52000000 ns/op
BenchmarkEmulatorThroughput-8 	      10	   2000000 ns/op	      1000 tasks/op	 700000 B/op	      44 allocs/op
BenchmarkSweepWorkers/workers=1-8 	       5	  54000000 ns/op
PASS
`

// TestAggregateTrials pins the -count N folding: repeated lines of one
// name collapse into a single mean record with trial counts and sample
// stdevs, grid order preserved and single-name runs untouched.
func TestAggregateTrials(t *testing.T) {
	rep, err := parse(strings.NewReader(multiTrialSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("aggregated to %d records, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEmulatorThroughput" || b.Trials != 2 || b.Iter != 20 {
		t.Fatalf("throughput aggregation wrong: %+v", b)
	}
	if b.NsOp != 1_500_000 || b.BytesOp != 600_000 || b.AllocsOp != 42 {
		t.Fatalf("means wrong: %+v", b)
	}
	// Per-trial rates are 1e6 and 5e5 tasks/sec: mean 750k, sample
	// stdev |1e6-5e5|/sqrt(2) ~ 353553.
	if b.TasksPerSec != 750_000 {
		t.Fatalf("tasks_per_sec = %f, want mean of per-trial rates", b.TasksPerSec)
	}
	if d := b.TasksPerSecStdev - 353553.39; d > 1 || d < -1 {
		t.Fatalf("tasks_per_sec_stdev = %f", b.TasksPerSecStdev)
	}
	if d := b.NsOpStdev - 707106.78; d > 1 || d < -1 {
		t.Fatalf("ns_per_op_stdev = %f", b.NsOpStdev)
	}
	// The sweep speedup derivation runs on the aggregated means.
	sw := rep.Benchmarks[1]
	if sw.Trials != 2 || sw.NsOp != 53_000_000 || sw.Metrics["speedup_vs_1"] != 1.0 {
		t.Fatalf("sweep aggregation wrong: %+v", sw)
	}
	// A single-trial record keeps the legacy shape: no trial fields.
	single, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range single.Benchmarks {
		if b.Trials != 0 || b.NsOpStdev != 0 || b.TasksPerSecStdev != 0 {
			t.Fatalf("single-trial record grew trial fields: %+v", b)
		}
	}
}

// TestCompareWarnsWithinTrialNoise pins the multi-trial gate: an
// over-threshold tasks/sec drop whose mean±stdev intervals overlap is
// a warning, not a regression; a drop clear of the noise still gates.
func TestCompareWarnsWithinTrialNoise(t *testing.T) {
	prev := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkEmulatorThroughput", NsOp: 1e9, TasksOp: 1_000_000,
			TasksPerSec: 1_000_000, TasksPerSecStdev: 100_000, Trials: 5},
	}}
	noisy := &Report{Benchmarks: []Benchmark{
		// -15% drop, but 850k+60k >= 1000k-100k: indistinguishable.
		{Name: "BenchmarkEmulatorThroughput", NsOp: 1e9, TasksOp: 850_000,
			TasksPerSec: 850_000, TasksPerSecStdev: 60_000, Trials: 5},
	}}
	var out strings.Builder
	if regressed := compare(&out, prev, noisy, 0.10); len(regressed) != 0 {
		t.Fatalf("noise-overlapped drop gated: %v\n%s", regressed, out.String())
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Fatalf("overlapped drop not surfaced as a warning:\n%s", out.String())
	}
	clear := &Report{Benchmarks: []Benchmark{
		// -30%: 700k+60k < 1000k-100k, outside the spread on both sides.
		{Name: "BenchmarkEmulatorThroughput", NsOp: 1e9, TasksOp: 700_000,
			TasksPerSec: 700_000, TasksPerSecStdev: 60_000, Trials: 5},
	}}
	out.Reset()
	regressed := compare(&out, prev, clear, 0.10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkEmulatorThroughput" {
		t.Fatalf("clear regression not caught: %v\n%s", regressed, out.String())
	}
}

func benchWithRate(name string, tasksPerSec float64) Benchmark {
	// ns/op chosen so TasksPerSec comes out exactly as requested.
	return Benchmark{Name: name, NsOp: 1e9, TasksOp: tasksPerSec, TasksPerSec: tasksPerSec}
}

func TestCompareGatesOnTasksPerSec(t *testing.T) {
	prev := &Report{Benchmarks: []Benchmark{
		benchWithRate("BenchmarkEmulatorThroughput", 1_000_000),
		benchWithRate("BenchmarkEmulatorThroughputManyPE", 500_000),
		{Name: "BenchmarkSweepWorkers/workers=1", NsOp: 100},
	}}
	ok := &Report{Benchmarks: []Benchmark{
		benchWithRate("BenchmarkEmulatorThroughput", 950_000), // -5%: tolerated
		benchWithRate("BenchmarkEmulatorThroughputManyPE", 1_200_000),
		{Name: "BenchmarkSweepWorkers/workers=1", NsOp: 500}, // ns/op never gates
		benchWithRate("BenchmarkNew", 1),                     // no previous record
	}}
	var out strings.Builder
	if regressed := compare(&out, prev, ok, 0.10); len(regressed) != 0 {
		t.Fatalf("tolerable deltas flagged: %v\n%s", regressed, out.String())
	}
	bad := &Report{Benchmarks: []Benchmark{
		benchWithRate("BenchmarkEmulatorThroughput", 880_000), // -12%
		benchWithRate("BenchmarkEmulatorThroughputManyPE", 500_000),
	}}
	out.Reset()
	regressed := compare(&out, prev, bad, 0.10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkEmulatorThroughput" {
		t.Fatalf("regression not caught: %v\n%s", regressed, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("delta table lacks the REGRESSION marker:\n%s", out.String())
	}
	// A headline benchmark that vanishes from the current run gates
	// too: dropping it must not silently disarm the check.
	missing := &Report{Benchmarks: []Benchmark{
		benchWithRate("BenchmarkEmulatorThroughput", 1_100_000),
	}}
	out.Reset()
	regressed = compare(&out, prev, missing, 0.10)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "BenchmarkEmulatorThroughputManyPE") {
		t.Fatalf("missing headline bench not flagged: %v\n%s", regressed, out.String())
	}
	// ns/op-only benches may come and go freely.
	if strings.Contains(out.String(), "SweepWorkers") && strings.Contains(out.String(), "MISSING") {
		t.Fatalf("non-headline bench wrongly gated:\n%s", out.String())
	}
}
