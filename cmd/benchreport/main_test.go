package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEmulatorThroughput 	      20	   6705221 ns/op	      8172 tasks/op	 1063324 B/op	      48 allocs/op
BenchmarkSweepWorkers/workers=1-8 	       5	  52000000 ns/op	  9000000 B/op	   1200 allocs/op
BenchmarkSweepSpeedup 	       2	 100000000 ns/op	       2.1 speedup_4w_x
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEmulatorThroughput" || b.Iter != 20 {
		t.Fatalf("header wrong: %+v", b)
	}
	if b.NsOp != 6705221 || b.TasksOp != 8172 || b.BytesOp != 1063324 || b.AllocsOp != 48 {
		t.Fatalf("values wrong: %+v", b)
	}
	wantRate := 8172 / (6705221e-9)
	if diff := b.TasksPerSec - wantRate; diff > 1 || diff < -1 {
		t.Fatalf("tasks_per_sec = %f, want %f", b.TasksPerSec, wantRate)
	}
	// Sub-benchmark name keeps its path but drops the -8 suffix.
	if rep.Benchmarks[1].Name != "BenchmarkSweepWorkers/workers=1" {
		t.Fatalf("sub-bench name = %q", rep.Benchmarks[1].Name)
	}
	if rep.Benchmarks[1].TasksPerSec != 0 {
		t.Fatal("tasks_per_sec derived without tasks/op")
	}
	// Custom metric columns survive verbatim.
	if rep.Benchmarks[2].Metrics["speedup_4w_x"] != 2.1 {
		t.Fatalf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("phantom benchmarks: %+v", rep.Benchmarks)
	}
}
