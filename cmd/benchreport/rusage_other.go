//go:build !unix

package main

import "os"

// rusageOf has no portable source on non-unix platforms; the trial
// record then carries wall clock and GC pauses only.
func rusageOf(ps *os.ProcessState) (userSec, sysSec float64, maxRSSKB int64, ok bool) {
	return 0, 0, 0, false
}
