// Command benchreport converts `go test -bench -benchmem` output read
// from stdin into a machine-readable JSON record, so the repository's
// performance trajectory is pinned in version control instead of
// commit messages.
//
//	go test -run NONE -bench 'EmulatorThroughput|SweepWorkers' -benchmem . | benchreport > BENCH_4.json
//
// For benchmarks that report a tasks/op metric (the emulator
// throughput benches), the derived tasks_per_sec field is the headline
// number: emulated tasks processed per second of host time.
//
// Interpretability fields: the -N GOMAXPROCS suffix go test appends to
// benchmark names is recorded as "gomaxprocs", and "single_cpu_host"
// flags runs where it is 1 — on such hosts the SweepWorkers curves
// collapse into noise, so a flat speedup trajectory there says nothing
// about the sweep engine. Each BenchmarkSweepWorkers/workers=N entry
// additionally carries an explicit speedup_vs_1 metric (ns/op of
// workers=1 over ns/op of workers=N).
//
// Multi-trial runs: `go test -count N -bench` emits N result lines
// per benchmark. Repeated lines of one name are aggregated into a
// single record carrying the mean of every column plus trials,
// ns_per_op_stdev and tasks_per_sec_stdev, so a BENCH_N.json records
// the spread of the measurement, not just one draw. Single-trial
// output is unchanged (the extra fields are omitted).
//
// Comparison mode:
//
//	benchreport -prev BENCH_3.json < bench.out > BENCH_4.json
//
// prints per-benchmark deltas against the previous record to stderr
// and exits non-zero when any benchmark's tasks_per_sec regressed by
// more than -max-regress (default 10%) — the `make bench-check` gate.
// When both records carry trial spreads and their mean±stdev intervals
// overlap, an over-threshold drop is reported as a warning instead of
// failing the gate: the measurement cannot distinguish the two runs.
//
// Exec mode:
//
//	benchreport -exec -trials 3 -raw BENCH_5.out go test -run NONE -bench . -benchmem . > BENCH_5.json
//
// runs the benchmark command itself, once per trial, instead of
// reading a pipe — which is what lets a BENCH file record what a pipe
// cannot carry: each trial's OS resource usage (user/system CPU
// seconds and peak RSS via the child's rusage) and its total
// stop-the-world GC pause (the command runs under GODEBUG=gctrace=1;
// the sweep- and mark-termination clock phases of every gc line are
// summed, covering the whole process tree of the trial). The combined
// stdout of all trials is parsed as usual, so repeated benchmark lines
// fold into mean/stdev records exactly like -count output, and the
// per-trial records land in trial_resources.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result (the mean over trials when
// the run repeated it via -count).
type Benchmark struct {
	Name string  `json:"name"`
	Iter int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// TasksOp is the emulated task count per benchmark iteration
	// (present only on benches reporting a tasks/op metric).
	TasksOp float64 `json:"tasks_per_op,omitempty"`
	// TasksPerSec = TasksOp / (NsOp * 1e-9).
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	BytesOp     float64 `json:"bytes_per_op,omitempty"`
	AllocsOp    float64 `json:"allocs_per_op,omitempty"`
	// Trials is how many result lines were aggregated into this record
	// (omitted for the common single-trial run). The value fields above
	// are then means over the trials; the stdevs below are the sample
	// standard deviations of ns/op and of the per-trial derived
	// tasks/sec rate.
	Trials           int     `json:"trials,omitempty"`
	NsOpStdev        float64 `json:"ns_per_op_stdev,omitempty"`
	TasksPerSecStdev float64 `json:"tasks_per_sec_stdev,omitempty"`
	// Metrics carries every other custom ReportMetric column verbatim,
	// plus the derived speedup_vs_1 on SweepWorkers sub-benches.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_N.json document.
type Report struct {
	CPU       string `json:"cpu,omitempty"`
	GoVersion string `json:"go,omitempty"`
	// GoMaxProcs is the -N suffix of the benchmark names: the
	// GOMAXPROCS the run executed under.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// SingleCPUHost marks records whose parallel-scaling numbers
	// (SweepWorkers, speedup_vs_1) are meaningless: with one CPU the
	// worker curves are indistinguishable noise.
	SingleCPUHost bool        `json:"single_cpu_host"`
	Benchmarks    []Benchmark `json:"benchmarks"`
	// TrialResources is one record per -exec trial process: OS-level
	// cost (rusage) and GC stop-the-world totals that per-op columns
	// cannot express. Absent for piped (non-exec) input.
	TrialResources []TrialResource `json:"trial_resources,omitempty"`
}

// TrialResource is the resource footprint of one exec-mode trial.
type TrialResource struct {
	WallSec float64 `json:"wall_sec"`
	UserSec float64 `json:"user_sec,omitempty"`
	SysSec  float64 `json:"sys_sec,omitempty"`
	// MaxRSSKB is the trial process's peak resident set size in KiB.
	MaxRSSKB int64 `json:"max_rss_kb,omitempty"`
	// GCPauseMs sums the stop-the-world clock phases of every gctrace
	// line the trial emitted; GCCount is how many collections ran.
	GCPauseMs float64 `json:"gc_pause_ms,omitempty"`
	GCCount   int     `json:"gc_count,omitempty"`
}

func main() {
	prev := flag.String("prev", "", "previous BENCH_N.json to diff against; >max-regress tasks/sec regressions exit non-zero")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional tasks/sec regression in -prev mode")
	execMode := flag.Bool("exec", false, "run the benchmark command given as trailing arguments instead of reading stdin")
	trials := flag.Int("trials", 1, "exec mode: how many times to run the command (one process, one trial_resources record each)")
	rawPath := flag.String("raw", "", "exec mode: also write the combined raw benchmark output to this file")
	flag.Parse()

	var rep *Report
	var err error
	if *execMode {
		var out []byte
		var resources []TrialResource
		out, resources, err = runTrials(flag.Args(), *trials, *rawPath)
		if err == nil {
			rep, err = parse(bytes.NewReader(out))
		}
		if rep != nil {
			rep.TrialResources = resources
		}
	} else {
		rep, err = parse(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if *prev == "" {
		return
	}
	data, err := os.ReadFile(*prev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	var prevRep Report
	if err := json.Unmarshal(data, &prevRep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: decoding %s: %v\n", *prev, err)
		os.Exit(1)
	}
	regressed := compare(os.Stderr, &prevRep, rep, *maxRegress)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: tasks/sec regressed >%.0f%% on: %s\n",
			*maxRegress*100, strings.Join(regressed, ", "))
		os.Exit(2)
	}
}

// compare prints per-benchmark deltas of cur against prev and returns
// the names whose tasks_per_sec dropped by more than maxRegress. Only
// the throughput headline gates: ns/op deltas of benches without a
// tasks/op metric are reported for context but never fail the run. A
// headline benchmark that exists in the previous record but not in the
// current run also gates — otherwise renaming (or narrowing the -bench
// regex past) a throughput bench would silently disarm the check.
func compare(w io.Writer, prev, cur *Report, maxRegress float64) []string {
	prevBy := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevBy[b.Name] = b
	}
	curBy := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = true
	}
	var regressed []string
	fmt.Fprintf(w, "benchreport: comparing against previous record\n")
	for _, p := range prev.Benchmarks {
		if p.TasksPerSec > 0 && !curBy[p.Name] {
			fmt.Fprintf(w, "  %-50s MISSING from current run (was %12.0f tasks/sec)\n", p.Name, p.TasksPerSec)
			regressed = append(regressed, p.Name+" (missing)")
		}
	}
	for _, b := range cur.Benchmarks {
		p, ok := prevBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-50s (new)\n", b.Name)
			continue
		}
		switch {
		case b.TasksPerSec > 0 && p.TasksPerSec > 0:
			delta := (b.TasksPerSec - p.TasksPerSec) / p.TasksPerSec
			verdict := ""
			if delta < -maxRegress {
				// An over-threshold drop whose mean±stdev intervals
				// overlap is measurement noise, not a regression: warn
				// without failing the gate. Single-trial records carry
				// zero stdev, so their intervals are points and the
				// strict gate is unchanged.
				if rateIntervalsOverlap(p, b) {
					verdict = "  WARNING (within trial noise, not gating)"
				} else {
					verdict = "  REGRESSION"
					regressed = append(regressed, b.Name)
				}
			}
			fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f tasks/sec  %+6.1f%%%s\n",
				b.Name, p.TasksPerSec, b.TasksPerSec, delta*100, verdict)
		case b.NsOp > 0 && p.NsOp > 0:
			delta := (b.NsOp - p.NsOp) / p.NsOp
			fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f ns/op      %+6.1f%%\n",
				b.Name, p.NsOp, b.NsOp, delta*100)
		}
	}
	return regressed
}

// rateIntervalsOverlap reports whether the two benchmarks' tasks/sec
// mean±stdev intervals intersect. Records without trial spreads have
// zero-width intervals, so two single-trial measurements only
// "overlap" when they are exactly equal.
func rateIntervalsOverlap(a, b Benchmark) bool {
	aLo, aHi := a.TasksPerSec-a.TasksPerSecStdev, a.TasksPerSec+a.TasksPerSecStdev
	bLo, bHi := b.TasksPerSec-b.TasksPerSecStdev, b.TasksPerSec+b.TasksPerSecStdev
	return aHi >= bLo && bHi >= aLo
}

// parse consumes `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   20   6705221 ns/op   8172 tasks/op   1063324 B/op   48 allocs/op
//
// with tab- or space-separated "<value> <unit>" pairs after the
// iteration count; header lines (goos/goarch/pkg/cpu) are sniffed for
// provenance.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go version") || strings.HasPrefix(line, "toolchain:"):
			rep.GoVersion = line
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iter, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitProcSuffix(fields[0])
		if procs > 0 && rep.GoMaxProcs == 0 {
			rep.GoMaxProcs = procs
			rep.SingleCPUHost = procs == 1
		}
		b := Benchmark{Name: name, Iter: iter}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = val
			case "tasks/op":
				b.TasksOp = val
			case "B/op":
				b.BytesOp = val
			case "allocs/op":
				b.AllocsOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if b.TasksOp > 0 && b.NsOp > 0 {
			b.TasksPerSec = b.TasksOp / (b.NsOp * 1e-9)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// go test appends the -N name suffix only when GOMAXPROCS > 1: a
	// record whose benchmark names carry no suffix ran on one CPU.
	if len(rep.Benchmarks) > 0 && rep.GoMaxProcs == 0 {
		rep.GoMaxProcs = 1
		rep.SingleCPUHost = true
	}
	aggregateTrials(rep)
	deriveSweepSpeedups(rep)
	return rep, nil
}

// aggregateTrials folds repeated result lines of one benchmark name
// (`go test -count N`) into a single mean record with trial counts and
// spreads. Iterations sum (total measured work); every per-op column
// is the mean over trials; TasksPerSec becomes the mean of the
// per-trial rates so its stdev describes the same population. A run
// with no repeated names passes through untouched.
func aggregateTrials(rep *Report) {
	groups := map[string][]Benchmark{}
	var order []string
	multi := false
	for _, b := range rep.Benchmarks {
		if _, seen := groups[b.Name]; !seen {
			order = append(order, b.Name)
		} else {
			multi = true
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	if !multi {
		return
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		agg := Benchmark{Name: name, Trials: len(g)}
		var nsTrials, rateTrials []float64
		for _, b := range g {
			agg.Iter += b.Iter
			agg.NsOp += b.NsOp / float64(len(g))
			agg.TasksOp += b.TasksOp / float64(len(g))
			agg.BytesOp += b.BytesOp / float64(len(g))
			agg.AllocsOp += b.AllocsOp / float64(len(g))
			for k, v := range b.Metrics {
				if agg.Metrics == nil {
					agg.Metrics = map[string]float64{}
				}
				agg.Metrics[k] += v / float64(len(g))
			}
			nsTrials = append(nsTrials, b.NsOp)
			if b.TasksOp > 0 && b.NsOp > 0 {
				rateTrials = append(rateTrials, b.TasksOp/(b.NsOp*1e-9))
			}
		}
		agg.NsOpStdev = stdev(nsTrials)
		if len(rateTrials) > 0 {
			agg.TasksPerSec = mean(rateTrials)
			agg.TasksPerSecStdev = stdev(rateTrials)
		}
		if agg.Trials == 1 {
			agg.Trials = 0 // single-trial records stay in the legacy shape
		}
		out = append(out, agg)
	}
	rep.Benchmarks = out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stdev is the sample standard deviation (n-1); zero below two points.
func stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// deriveSweepSpeedups stamps speedup_vs_1 onto every SweepWorkers
// sub-benchmark: wall-clock of the workers=1 run over this run. On a
// single-CPU host the values hover around 1.0 by construction — the
// single_cpu_host flag tells readers to discount them.
func deriveSweepSpeedups(rep *Report) {
	var base float64
	for _, b := range rep.Benchmarks {
		if strings.HasSuffix(b.Name, "SweepWorkers/workers=1") {
			base = b.NsOp
			break
		}
	}
	if base <= 0 {
		return
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		if !strings.Contains(b.Name, "SweepWorkers/workers=") || b.NsOp <= 0 {
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics["speedup_vs_1"] = base / b.NsOp
	}
}

// runTrials executes the benchmark command n times under
// GODEBUG=gctrace=1, returning the concatenated stdout (parsed like
// -count output) and one resource record per trial. gctrace lines are
// consumed for the GC pause totals; every other stderr line is
// forwarded so test failures stay visible.
func runTrials(args []string, n int, rawPath string) ([]byte, []TrialResource, error) {
	if len(args) == 0 {
		return nil, nil, fmt.Errorf("-exec needs a command: benchreport -exec [-trials N] go test -bench ...")
	}
	if n < 1 {
		n = 1
	}
	var raw io.Writer = io.Discard
	if rawPath != "" {
		f, err := os.Create(rawPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		raw = f
	}
	var combined bytes.Buffer
	var resources []TrialResource
	for i := 0; i < n; i++ {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Env = append(os.Environ(), "GODEBUG=gctrace=1")
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		start := time.Now()
		runErr := cmd.Run()
		wall := time.Since(start)
		// `go test` merges the test binary's stderr — where gctrace
		// writes — into its own stdout, interleaving gc lines even
		// mid-benchmark-line. Both streams are sieved: gc traces feed
		// the pause totals and are excised (with their newline, so a
		// split benchmark line rejoins); the rest passes through to
		// the benchmark parser / the operator.
		outBytes, outMs, outN := stripGCTrace(stdout.Bytes())
		combined.Write(outBytes)
		raw.Write(outBytes)
		errBytes, errMs, errN := stripGCTrace(stderr.Bytes())
		os.Stderr.Write(errBytes)
		pauseMs, gcCount := outMs+errMs, outN+errN
		if runErr != nil {
			return nil, nil, fmt.Errorf("trial %d: %v", i+1, runErr)
		}
		tr := TrialResource{WallSec: wall.Seconds(), GCPauseMs: pauseMs, GCCount: gcCount}
		if user, sys, rss, ok := rusageOf(cmd.ProcessState); ok {
			tr.UserSec, tr.SysSec, tr.MaxRSSKB = user, sys, rss
		}
		resources = append(resources, tr)
	}
	return combined.Bytes(), resources, nil
}

// gcTraceRE matches one GODEBUG=gctrace=1 record through its trailing
// newline. The runtime emits each record atomically but the host
// stream may already hold a partial benchmark line, so records are
// located anywhere, not just at line starts.
var gcTraceRE = regexp.MustCompile(`gc \d+ @[0-9.]+s \d+%: (\S+) ms clock[^\n]*\n?`)

// stripGCTrace excises every gctrace record from b, summing the
// stop-the-world sweep- and mark-termination clock phases
// ("0.018+1.2+0.003 ms clock": first and third are STW) into pauseMs.
func stripGCTrace(b []byte) (out []byte, pauseMs float64, count int) {
	matches := gcTraceRE.FindAllSubmatchIndex(b, -1)
	if len(matches) == 0 {
		return b, 0, 0
	}
	out = make([]byte, 0, len(b))
	prev := 0
	for _, m := range matches {
		out = append(out, b[prev:m[0]]...)
		prev = m[1]
		phases := strings.Split(string(b[m[2]:m[3]]), "+")
		if len(phases) != 3 {
			continue
		}
		stw1, err1 := strconv.ParseFloat(phases[0], 64)
		stw2, err2 := strconv.ParseFloat(phases[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		pauseMs += stw1 + stw2
		count++
	}
	out = append(out, b[prev:]...)
	return out, pauseMs, count
}

// splitProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX-8" -> "BenchmarkX", 8), keeping
// sub-bench paths intact; procs is 0 when no suffix is present.
func splitProcSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}
