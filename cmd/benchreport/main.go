// Command benchreport converts `go test -bench -benchmem` output read
// from stdin into a machine-readable JSON record, so the repository's
// performance trajectory is pinned in version control instead of
// commit messages.
//
//	go test -run NONE -bench 'EmulatorThroughput|SweepWorkers' -benchmem . | benchreport > BENCH_4.json
//
// For benchmarks that report a tasks/op metric (the emulator
// throughput benches), the derived tasks_per_sec field is the headline
// number: emulated tasks processed per second of host time.
//
// Interpretability fields: the -N GOMAXPROCS suffix go test appends to
// benchmark names is recorded as "gomaxprocs", and "single_cpu_host"
// flags runs where it is 1 — on such hosts the SweepWorkers curves
// collapse into noise, so a flat speedup trajectory there says nothing
// about the sweep engine. Each BenchmarkSweepWorkers/workers=N entry
// additionally carries an explicit speedup_vs_1 metric (ns/op of
// workers=1 over ns/op of workers=N).
//
// Multi-trial runs: `go test -count N -bench` emits N result lines
// per benchmark. Repeated lines of one name are aggregated into a
// single record carrying the mean of every column plus trials,
// ns_per_op_stdev and tasks_per_sec_stdev, so a BENCH_N.json records
// the spread of the measurement, not just one draw. Single-trial
// output is unchanged (the extra fields are omitted).
//
// Comparison mode:
//
//	benchreport -prev BENCH_3.json < bench.out > BENCH_4.json
//
// prints per-benchmark deltas against the previous record to stderr
// and exits non-zero when any benchmark's tasks_per_sec regressed by
// more than -max-regress (default 10%) — the `make bench-check` gate.
// When both records carry trial spreads and their mean±stdev intervals
// overlap, an over-threshold drop is reported as a warning instead of
// failing the gate: the measurement cannot distinguish the two runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result (the mean over trials when
// the run repeated it via -count).
type Benchmark struct {
	Name string  `json:"name"`
	Iter int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// TasksOp is the emulated task count per benchmark iteration
	// (present only on benches reporting a tasks/op metric).
	TasksOp float64 `json:"tasks_per_op,omitempty"`
	// TasksPerSec = TasksOp / (NsOp * 1e-9).
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	BytesOp     float64 `json:"bytes_per_op,omitempty"`
	AllocsOp    float64 `json:"allocs_per_op,omitempty"`
	// Trials is how many result lines were aggregated into this record
	// (omitted for the common single-trial run). The value fields above
	// are then means over the trials; the stdevs below are the sample
	// standard deviations of ns/op and of the per-trial derived
	// tasks/sec rate.
	Trials           int     `json:"trials,omitempty"`
	NsOpStdev        float64 `json:"ns_per_op_stdev,omitempty"`
	TasksPerSecStdev float64 `json:"tasks_per_sec_stdev,omitempty"`
	// Metrics carries every other custom ReportMetric column verbatim,
	// plus the derived speedup_vs_1 on SweepWorkers sub-benches.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_N.json document.
type Report struct {
	CPU       string `json:"cpu,omitempty"`
	GoVersion string `json:"go,omitempty"`
	// GoMaxProcs is the -N suffix of the benchmark names: the
	// GOMAXPROCS the run executed under.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// SingleCPUHost marks records whose parallel-scaling numbers
	// (SweepWorkers, speedup_vs_1) are meaningless: with one CPU the
	// worker curves are indistinguishable noise.
	SingleCPUHost bool        `json:"single_cpu_host"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

func main() {
	prev := flag.String("prev", "", "previous BENCH_N.json to diff against; >max-regress tasks/sec regressions exit non-zero")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional tasks/sec regression in -prev mode")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if *prev == "" {
		return
	}
	data, err := os.ReadFile(*prev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	var prevRep Report
	if err := json.Unmarshal(data, &prevRep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: decoding %s: %v\n", *prev, err)
		os.Exit(1)
	}
	regressed := compare(os.Stderr, &prevRep, rep, *maxRegress)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: tasks/sec regressed >%.0f%% on: %s\n",
			*maxRegress*100, strings.Join(regressed, ", "))
		os.Exit(2)
	}
}

// compare prints per-benchmark deltas of cur against prev and returns
// the names whose tasks_per_sec dropped by more than maxRegress. Only
// the throughput headline gates: ns/op deltas of benches without a
// tasks/op metric are reported for context but never fail the run. A
// headline benchmark that exists in the previous record but not in the
// current run also gates — otherwise renaming (or narrowing the -bench
// regex past) a throughput bench would silently disarm the check.
func compare(w io.Writer, prev, cur *Report, maxRegress float64) []string {
	prevBy := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevBy[b.Name] = b
	}
	curBy := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = true
	}
	var regressed []string
	fmt.Fprintf(w, "benchreport: comparing against previous record\n")
	for _, p := range prev.Benchmarks {
		if p.TasksPerSec > 0 && !curBy[p.Name] {
			fmt.Fprintf(w, "  %-50s MISSING from current run (was %12.0f tasks/sec)\n", p.Name, p.TasksPerSec)
			regressed = append(regressed, p.Name+" (missing)")
		}
	}
	for _, b := range cur.Benchmarks {
		p, ok := prevBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-50s (new)\n", b.Name)
			continue
		}
		switch {
		case b.TasksPerSec > 0 && p.TasksPerSec > 0:
			delta := (b.TasksPerSec - p.TasksPerSec) / p.TasksPerSec
			verdict := ""
			if delta < -maxRegress {
				// An over-threshold drop whose mean±stdev intervals
				// overlap is measurement noise, not a regression: warn
				// without failing the gate. Single-trial records carry
				// zero stdev, so their intervals are points and the
				// strict gate is unchanged.
				if rateIntervalsOverlap(p, b) {
					verdict = "  WARNING (within trial noise, not gating)"
				} else {
					verdict = "  REGRESSION"
					regressed = append(regressed, b.Name)
				}
			}
			fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f tasks/sec  %+6.1f%%%s\n",
				b.Name, p.TasksPerSec, b.TasksPerSec, delta*100, verdict)
		case b.NsOp > 0 && p.NsOp > 0:
			delta := (b.NsOp - p.NsOp) / p.NsOp
			fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f ns/op      %+6.1f%%\n",
				b.Name, p.NsOp, b.NsOp, delta*100)
		}
	}
	return regressed
}

// rateIntervalsOverlap reports whether the two benchmarks' tasks/sec
// mean±stdev intervals intersect. Records without trial spreads have
// zero-width intervals, so two single-trial measurements only
// "overlap" when they are exactly equal.
func rateIntervalsOverlap(a, b Benchmark) bool {
	aLo, aHi := a.TasksPerSec-a.TasksPerSecStdev, a.TasksPerSec+a.TasksPerSecStdev
	bLo, bHi := b.TasksPerSec-b.TasksPerSecStdev, b.TasksPerSec+b.TasksPerSecStdev
	return aHi >= bLo && bHi >= aLo
}

// parse consumes `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   20   6705221 ns/op   8172 tasks/op   1063324 B/op   48 allocs/op
//
// with tab- or space-separated "<value> <unit>" pairs after the
// iteration count; header lines (goos/goarch/pkg/cpu) are sniffed for
// provenance.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go version") || strings.HasPrefix(line, "toolchain:"):
			rep.GoVersion = line
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iter, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitProcSuffix(fields[0])
		if procs > 0 && rep.GoMaxProcs == 0 {
			rep.GoMaxProcs = procs
			rep.SingleCPUHost = procs == 1
		}
		b := Benchmark{Name: name, Iter: iter}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = val
			case "tasks/op":
				b.TasksOp = val
			case "B/op":
				b.BytesOp = val
			case "allocs/op":
				b.AllocsOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if b.TasksOp > 0 && b.NsOp > 0 {
			b.TasksPerSec = b.TasksOp / (b.NsOp * 1e-9)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// go test appends the -N name suffix only when GOMAXPROCS > 1: a
	// record whose benchmark names carry no suffix ran on one CPU.
	if len(rep.Benchmarks) > 0 && rep.GoMaxProcs == 0 {
		rep.GoMaxProcs = 1
		rep.SingleCPUHost = true
	}
	aggregateTrials(rep)
	deriveSweepSpeedups(rep)
	return rep, nil
}

// aggregateTrials folds repeated result lines of one benchmark name
// (`go test -count N`) into a single mean record with trial counts and
// spreads. Iterations sum (total measured work); every per-op column
// is the mean over trials; TasksPerSec becomes the mean of the
// per-trial rates so its stdev describes the same population. A run
// with no repeated names passes through untouched.
func aggregateTrials(rep *Report) {
	groups := map[string][]Benchmark{}
	var order []string
	multi := false
	for _, b := range rep.Benchmarks {
		if _, seen := groups[b.Name]; !seen {
			order = append(order, b.Name)
		} else {
			multi = true
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	if !multi {
		return
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		agg := Benchmark{Name: name, Trials: len(g)}
		var nsTrials, rateTrials []float64
		for _, b := range g {
			agg.Iter += b.Iter
			agg.NsOp += b.NsOp / float64(len(g))
			agg.TasksOp += b.TasksOp / float64(len(g))
			agg.BytesOp += b.BytesOp / float64(len(g))
			agg.AllocsOp += b.AllocsOp / float64(len(g))
			for k, v := range b.Metrics {
				if agg.Metrics == nil {
					agg.Metrics = map[string]float64{}
				}
				agg.Metrics[k] += v / float64(len(g))
			}
			nsTrials = append(nsTrials, b.NsOp)
			if b.TasksOp > 0 && b.NsOp > 0 {
				rateTrials = append(rateTrials, b.TasksOp/(b.NsOp*1e-9))
			}
		}
		agg.NsOpStdev = stdev(nsTrials)
		if len(rateTrials) > 0 {
			agg.TasksPerSec = mean(rateTrials)
			agg.TasksPerSecStdev = stdev(rateTrials)
		}
		if agg.Trials == 1 {
			agg.Trials = 0 // single-trial records stay in the legacy shape
		}
		out = append(out, agg)
	}
	rep.Benchmarks = out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stdev is the sample standard deviation (n-1); zero below two points.
func stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// deriveSweepSpeedups stamps speedup_vs_1 onto every SweepWorkers
// sub-benchmark: wall-clock of the workers=1 run over this run. On a
// single-CPU host the values hover around 1.0 by construction — the
// single_cpu_host flag tells readers to discount them.
func deriveSweepSpeedups(rep *Report) {
	var base float64
	for _, b := range rep.Benchmarks {
		if strings.HasSuffix(b.Name, "SweepWorkers/workers=1") {
			base = b.NsOp
			break
		}
	}
	if base <= 0 {
		return
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		if !strings.Contains(b.Name, "SweepWorkers/workers=") || b.NsOp <= 0 {
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics["speedup_vs_1"] = base / b.NsOp
	}
}

// splitProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX-8" -> "BenchmarkX", 8), keeping
// sub-bench paths intact; procs is 0 when no suffix is present.
func splitProcSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}
