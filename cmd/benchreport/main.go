// Command benchreport converts `go test -bench -benchmem` output read
// from stdin into a machine-readable JSON record, so the repository's
// performance trajectory is pinned in version control instead of
// commit messages.
//
//	go test -run NONE -bench 'EmulatorThroughput|SweepWorkers' -benchmem . | benchreport > BENCH_2.json
//
// For benchmarks that report a tasks/op metric (the emulator
// throughput benches), the derived tasks_per_sec field is the headline
// number: emulated tasks processed per second of host time.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string  `json:"name"`
	Iter int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// TasksOp is the emulated task count per benchmark iteration
	// (present only on benches reporting a tasks/op metric).
	TasksOp float64 `json:"tasks_per_op,omitempty"`
	// TasksPerSec = TasksOp / (NsOp * 1e-9).
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	BytesOp     float64 `json:"bytes_per_op,omitempty"`
	AllocsOp    float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every other custom ReportMetric column verbatim.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_N.json document.
type Report struct {
	CPU        string      `json:"cpu,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   20   6705221 ns/op   8172 tasks/op   1063324 B/op   48 allocs/op
//
// with tab- or space-separated "<value> <unit>" pairs after the
// iteration count; header lines (goos/goarch/pkg/cpu) are sniffed for
// provenance.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go version") || strings.HasPrefix(line, "toolchain:"):
			rep.GoVersion = line
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iter, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcSuffix(fields[0]), Iter: iter}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = val
			case "tasks/op":
				b.TasksOp = val
			case "B/op":
				b.BytesOp = val
			case "allocs/op":
				b.AllocsOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if b.TasksOp > 0 && b.NsOp > 0 {
			b.TasksPerSec = b.TasksOp / (b.NsOp * 1e-9)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX-8" -> "BenchmarkX"), keeping sub-bench
// paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
