// Command experiments regenerates every table and figure of the
// paper's evaluation section.
//
//	experiments -exp table1     Table I  (standalone app times, 3C+2F)
//	experiments -exp table2     Table II (injection-rate traces)
//	experiments -exp fig9       Figure 9 (validation-mode config sweep)
//	experiments -exp fig10      Figure 10 (scheduler comparison)
//	experiments -exp fig11      Figure 11 (Odroid big.LITTLE sweep)
//	experiments -exp cs4        Case Study 4 (automatic conversion)
//	experiments -exp scale      synthetic many-PE scale study (up to 80 PEs)
//	experiments -exp saturation open-loop Poisson rate sweep to divergence (online percentiles)
//	experiments -exp churn      policy robustness under PE faults, DVFS and power caps
//	experiments -exp all        everything
//
// The grid experiments fan out over the sweep engine; -workers bounds
// the pool (default GOMAXPROCS) and progress/ETA lines go to stderr.
// Output is byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: table1, table2, fig9, fig10, fig11, cs4, scale, saturation, churn, all")
		iters   = fs.Int("iters", 50, "Figure 9 iteration count (paper uses 50)")
		n       = fs.Int("n", 1024, "Case Study 4 transform length (paper uses 1024)")
		csvDir  = fs.String("csv", "", "also write plot-ready CSV files into this directory")
		workers = fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		quiet   = fs.Bool("quiet", false, "suppress sweep progress/ETA lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sweepOpt := func(label string) sweep.Options {
		opt := sweep.Options{Workers: *workers, Label: label}
		if !*quiet {
			opt.Progress = os.Stderr
		}
		return opt
	}

	writeCSV := func(name string, fill func(*os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.TableI(sweepOpt("table1"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTableI(rows))
			if err := writeCSV("table1.csv", func(f *os.File) error { return experiments.TableICSV(f, rows) }); err != nil {
				return err
			}
		case "table2":
			res, err := experiments.TableIIGen()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTableII(res))
			if err := writeCSV("table2.csv", func(f *os.File) error { return experiments.TableIICSV(f, res) }); err != nil {
				return err
			}
		case "fig9":
			pts, err := experiments.Fig9(*iters, sweepOpt("fig9"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig9(pts))
			if err := writeCSV("fig9.csv", func(f *os.File) error { return experiments.Fig9CSV(f, pts) }); err != nil {
				return err
			}
		case "fig10":
			pts, err := experiments.Fig10(0, sweepOpt("fig10"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig10(pts))
			if err := writeCSV("fig10.csv", func(f *os.File) error { return experiments.Fig10CSV(f, pts) }); err != nil {
				return err
			}
		case "fig11":
			pts, err := experiments.Fig11(nil, sweepOpt("fig11"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig11(pts))
			if err := writeCSV("fig11.csv", func(f *os.File) error { return experiments.Fig11CSV(f, pts) }); err != nil {
				return err
			}
		case "cs4":
			r, err := experiments.CS4(*n, 0)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderCS4(r))
		case "scale":
			pts, err := experiments.Scale(nil, 0, sweepOpt("scale"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderScale(pts))
			if err := writeCSV("scale.csv", func(f *os.File) error { return experiments.ScaleCSV(f, pts) }); err != nil {
				return err
			}
		case "saturation":
			pts, err := experiments.Saturation(nil, 0, sweepOpt("saturation"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderSaturation(pts))
			if err := writeCSV("saturation.csv", func(f *os.File) error { return experiments.SaturationCSV(f, pts) }); err != nil {
				return err
			}
		case "churn":
			pts, err := experiments.Churn(0, sweepOpt("churn"))
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderChurn(pts))
			if err := writeCSV("churn.csv", func(f *os.File) error { return experiments.ChurnCSV(f, pts) }); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig9", "fig10", "fig11", "cs4", "scale", "saturation", "churn"} {
			fmt.Printf("=== %s ===\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(*exp)
}
