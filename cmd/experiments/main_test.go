package main

import "testing"

func TestSmallExperiments(t *testing.T) {
	// The quick experiments run at full size; the long sweeps are
	// covered by internal/experiments tests at reduced size and by the
	// bench harness.
	for _, exp := range []string{"table1", "table2"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestCS4Reduced(t *testing.T) {
	if err := run([]string{"-exp", "cs4", "-n", "128"}); err != nil {
		t.Fatal(err)
	}
}

func TestFig9Reduced(t *testing.T) {
	if err := run([]string{"-exp", "fig9", "-iters", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSaturationRuns(t *testing.T) {
	if err := run([]string{"-exp", "saturation", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
